// Tests for the first-class layout relation (layout/relation.h).
//
// The centerpiece is a randomized differential corpus: random shapes crossed
// with random primitive sequences (including unfold+pad chains), checked three
// ways against independent ground truth —
//   1. LayoutRelation::MapRead is expression-for-expression identical to the
//      legacy LayoutSeq::MapRead (the bit-identity contract of the wrapper);
//   2. evaluating the emitted expressions pointwise matches a per-primitive
//      numeric index simulator reimplemented here from the paper's §4.1
//      semantics (no shared code with the production mapping);
//   3. bijective relations round-trip: MapInverse ∘ MapRead == identity and
//      Compose(Inverse(R), R) == Identity by fingerprint.
// Plus: fingerprint equality across equivalent spellings, coalescing /
// divisibility queries, the relation-derived RL state, and the exactness of
// ir::AffineAnalyzer::DecomposeClamped on the unfold clamp.

#include <algorithm>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/ir/affine.h"
#include "src/ir/expr.h"
#include "src/layout/primitive.h"
#include "src/layout/relation.h"

namespace alt::layout {
namespace {

using ir::Const;
using ir::Eval;
using ir::Expr;
using ir::MakeVar;

std::vector<Expr> MakeVars(int n, std::vector<int>* ids) {
  std::vector<Expr> vars;
  for (int i = 0; i < n; ++i) {
    Expr v = MakeVar("v" + std::to_string(i));
    ids->push_back(v->var_id);
    vars.push_back(v);
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Independent numeric simulator of the §4.1 index semantics, primitive by
// primitive. Intentionally reimplemented (divide/mod arithmetic on concrete
// integers) so a bug in the production expression emission cannot hide.
// ---------------------------------------------------------------------------

int64_t SimUnfoldTiles(int64_t extent, int64_t tile, int64_t stride) {
  int64_t n = (extent - tile + stride - 1) / stride + 1;
  return n < 1 ? 1 : n;
}

std::vector<int64_t> SimMapIndex(const LayoutSeq& seq, std::vector<int64_t> shape,
                                 std::vector<int64_t> idx) {
  for (const Primitive& p : seq.primitives()) {
    switch (p.kind) {
      case PrimitiveKind::kSplit: {
        int64_t v = idx[p.dim];
        std::vector<int64_t> digits(p.factors.size());
        for (int i = static_cast<int>(p.factors.size()) - 1; i >= 0; --i) {
          digits[i] = v % p.factors[i];
          v /= p.factors[i];
        }
        idx.erase(idx.begin() + p.dim);
        idx.insert(idx.begin() + p.dim, digits.begin(), digits.end());
        shape.erase(shape.begin() + p.dim);
        shape.insert(shape.begin() + p.dim, p.factors.begin(), p.factors.end());
        break;
      }
      case PrimitiveKind::kReorder: {
        std::vector<int64_t> ni(idx.size()), ns(shape.size());
        for (size_t d = 0; d < idx.size(); ++d) {
          ni[d] = idx[p.perm[d]];
          ns[d] = shape[p.perm[d]];
        }
        idx = std::move(ni);
        shape = std::move(ns);
        break;
      }
      case PrimitiveKind::kFuse: {
        int64_t v = 0, ext = 1;
        for (int i = 0; i < p.num_dims; ++i) {
          v = v * shape[p.dim + i] + idx[p.dim + i];
          ext *= shape[p.dim + i];
        }
        idx.erase(idx.begin() + p.dim, idx.begin() + p.dim + p.num_dims);
        idx.insert(idx.begin() + p.dim, v);
        shape.erase(shape.begin() + p.dim, shape.begin() + p.dim + p.num_dims);
        shape.insert(shape.begin() + p.dim, ext);
        break;
      }
      case PrimitiveKind::kUnfold: {
        // Canonical representative of a duplicated element: the latest tile
        // containing it, clamped to the last tile.
        int64_t tiles = SimUnfoldTiles(shape[p.dim], p.tile_size, p.stride);
        int64_t v = idx[p.dim];
        int64_t tile = std::min(v / p.stride, tiles - 1);
        idx[p.dim] = tile;
        idx.insert(idx.begin() + p.dim + 1, v - tile * p.stride);
        shape[p.dim] = tiles;
        shape.insert(shape.begin() + p.dim + 1, p.tile_size);
        break;
      }
      case PrimitiveKind::kPad: {
        idx[p.dim] += p.pad_before;
        shape[p.dim] += p.pad_before + p.pad_after;
        break;
      }
      case PrimitiveKind::kStoreAt: {
        ADD_FAILURE() << "store_at not supported by the numeric simulator";
        break;
      }
    }
  }
  return idx;
}

// ---------------------------------------------------------------------------
// Randomized corpus generation.
// ---------------------------------------------------------------------------

struct CorpusCase {
  std::vector<int64_t> shape;
  LayoutSeq seq;
};

std::vector<int64_t> RandomFactorization(int64_t n, int parts, std::mt19937_64& rng) {
  std::vector<int64_t> factors(parts, 1);
  for (int i = 0; i < parts - 1; ++i) {
    std::vector<int64_t> divs;
    for (int64_t d = 1; d <= n; ++d) {
      if (n % d == 0) {
        divs.push_back(d);
      }
    }
    int64_t f = divs[rng() % divs.size()];
    factors[i] = f;
    n /= f;
  }
  factors[parts - 1] = n;
  return factors;
}

CorpusCase RandomCase(std::mt19937_64& rng, bool allow_advanced) {
  CorpusCase c;
  int rank = 1 + static_cast<int>(rng() % 3);
  const int64_t extents[] = {2, 3, 4, 6, 8, 12};
  for (int d = 0; d < rank; ++d) {
    c.shape.push_back(extents[rng() % 6]);
  }
  std::vector<int64_t> cur = c.shape;
  int steps = 1 + static_cast<int>(rng() % 4);
  for (int s = 0; s < steps; ++s) {
    int kind = static_cast<int>(rng() % (allow_advanced ? 5 : 3));
    int r = static_cast<int>(cur.size());
    Primitive p = Primitive::Reorder({});
    switch (kind) {
      case 0: {  // split a composite dim
        int dim = static_cast<int>(rng() % r);
        if (cur[dim] < 4) {
          continue;
        }
        int parts = 2 + static_cast<int>(rng() % 2);
        p = Primitive::Split(dim, RandomFactorization(cur[dim], parts, rng));
        break;
      }
      case 1: {  // random permutation
        std::vector<int> perm(r);
        for (int i = 0; i < r; ++i) {
          perm[i] = i;
        }
        std::shuffle(perm.begin(), perm.end(), rng);
        p = Primitive::Reorder(perm);
        break;
      }
      case 2: {  // fuse an adjacent range
        if (r < 2) {
          continue;
        }
        int n = 2 + static_cast<int>(rng() % std::min(r - 1, 2));
        int dim = static_cast<int>(rng() % (r - n + 1));
        p = Primitive::Fuse(dim, n);
        break;
      }
      case 3: {  // unfold (possibly overlapped)
        int dim = static_cast<int>(rng() % r);
        if (cur[dim] < 3) {
          continue;
        }
        int64_t tile = 2 + static_cast<int64_t>(rng() % std::min<int64_t>(cur[dim] - 1, 4));
        int64_t stride = 1 + static_cast<int64_t>(rng() % tile);
        p = Primitive::Unfold(dim, tile, stride);
        break;
      }
      default: {  // pad
        int dim = static_cast<int>(rng() % r);
        p = Primitive::Pad(dim, static_cast<int64_t>(rng() % 3),
                           static_cast<int64_t>(rng() % 3));
        break;
      }
    }
    std::vector<int64_t> next = cur;
    LayoutSeq one;
    one.Append(p);
    if (!one.ApplyToShape(next).ok()) {
      continue;
    }
    c.seq.Append(p);
    cur = std::move(next);
  }
  return c;
}

// Enumerates up to `cap` points of the canonical domain (all of it when it is
// small enough), invoking fn(point).
template <typename Fn>
void ForSampledPoints(const std::vector<int64_t>& shape, int cap, std::mt19937_64& rng,
                      Fn&& fn) {
  int64_t total = 1;
  for (int64_t d : shape) {
    total *= d;
  }
  if (total <= cap) {
    std::vector<int64_t> point(shape.size(), 0);
    for (;;) {
      fn(point);
      int d = static_cast<int>(point.size()) - 1;
      while (d >= 0 && ++point[d] == shape[d]) {
        point[d--] = 0;
      }
      if (d < 0) {
        return;
      }
    }
  }
  for (int i = 0; i < cap; ++i) {
    std::vector<int64_t> point(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) {
      point[d] = static_cast<int64_t>(rng() % shape[d]);
    }
    fn(point);
  }
}

// ---------------------------------------------------------------------------
// The differential corpus.
// ---------------------------------------------------------------------------

TEST(RelationDifferentialTest, MapReadMatchesLegacyAndNumericSimulator) {
  std::mt19937_64 rng(20230415);
  for (int iter = 0; iter < 200; ++iter) {
    CorpusCase c = RandomCase(rng, /*allow_advanced=*/true);
    auto rel = LayoutRelation::FromSeq(c.seq, c.shape);
    ASSERT_TRUE(rel.ok()) << c.seq.ToString();

    std::vector<int> ids;
    auto vars = MakeVars(static_cast<int>(c.shape.size()), &ids);
    auto legacy = c.seq.MapRead(c.shape, vars);
    auto mapped = rel->MapRead(vars);
    ASSERT_EQ(legacy.ok(), mapped.ok()) << c.seq.ToString();
    if (!mapped.ok()) {
      continue;
    }
    // Bit-identity contract: same expressions, token for token.
    ASSERT_EQ(legacy->size(), mapped->size());
    for (size_t d = 0; d < mapped->size(); ++d) {
      EXPECT_EQ(ir::ToString((*legacy)[d]), ir::ToString((*mapped)[d])) << c.seq.ToString();
    }

    // Shape agreement with the legacy transform.
    std::vector<int64_t> legacy_shape = c.shape;
    ASSERT_TRUE(c.seq.ApplyToShape(legacy_shape).ok());
    EXPECT_EQ(rel->ApplyToShape(), legacy_shape) << c.seq.ToString();
    EXPECT_EQ(rel->ExpandsData(), c.seq.HasNontrivialAdvanced()) << c.seq.ToString();

    // Pointwise differential against the numeric simulator.
    const auto& phys_shape = rel->ApplyToShape();
    ForSampledPoints(c.shape, 128, rng, [&](const std::vector<int64_t>& point) {
      std::unordered_map<int, int64_t> env;
      for (size_t d = 0; d < point.size(); ++d) {
        env[ids[d]] = point[d];
      }
      std::vector<int64_t> expect = SimMapIndex(c.seq, c.shape, point);
      ASSERT_EQ(expect.size(), mapped->size());
      for (size_t d = 0; d < mapped->size(); ++d) {
        int64_t got = Eval((*mapped)[d], env);
        EXPECT_EQ(got, expect[d]) << c.seq.ToString() << " dim " << d;
        EXPECT_GE(got, 0) << c.seq.ToString();
        EXPECT_LT(got, phys_shape[d]) << c.seq.ToString();
      }
    });
  }
}

TEST(RelationDifferentialTest, BijectiveRelationsRoundTrip) {
  std::mt19937_64 rng(777);
  int bijective_seen = 0;
  for (int iter = 0; iter < 200; ++iter) {
    CorpusCase c = RandomCase(rng, /*allow_advanced=*/true);
    auto rel = LayoutRelation::FromSeq(c.seq, c.shape);
    ASSERT_TRUE(rel.ok());
    if (!rel->IsBijective()) {
      continue;
    }
    ++bijective_seen;

    // MapInverse ∘ MapRead == identity, and matches the legacy inverse.
    std::vector<int> ids;
    auto vars = MakeVars(static_cast<int>(c.shape.size()), &ids);
    auto fwd = rel->MapRead(vars);
    ASSERT_TRUE(fwd.ok()) << c.seq.ToString();
    auto back = rel->MapInverse(*fwd);
    ASSERT_TRUE(back.ok()) << c.seq.ToString();
    auto legacy_back = c.seq.MapInverse(c.shape, *fwd);
    ASSERT_TRUE(legacy_back.ok()) << c.seq.ToString();
    ASSERT_EQ(back->size(), c.shape.size());
    for (size_t d = 0; d < back->size(); ++d) {
      EXPECT_EQ(ir::ToString((*back)[d]), ir::ToString((*legacy_back)[d]));
    }
    ForSampledPoints(c.shape, 64, rng, [&](const std::vector<int64_t>& point) {
      std::unordered_map<int, int64_t> env;
      for (size_t d = 0; d < point.size(); ++d) {
        env[ids[d]] = point[d];
      }
      for (size_t d = 0; d < back->size(); ++d) {
        EXPECT_EQ(Eval((*back)[d], env), point[d]) << c.seq.ToString() << " dim " << d;
      }
    });

    // Compose(Inverse(R), R) == Identity, by flag and by fingerprint.
    auto inv = rel->Inverse();
    ASSERT_TRUE(inv.ok()) << c.seq.ToString();
    auto round = LayoutRelation::Compose(*inv, *rel);
    ASSERT_TRUE(round.ok()) << c.seq.ToString();
    EXPECT_TRUE(round->IsIdentity()) << c.seq.ToString() << " -> " << round->ToString();
    EXPECT_EQ(round->Fingerprint(), LayoutRelation::Identity(c.shape).Fingerprint())
        << c.seq.ToString();
  }
  // The corpus must actually exercise the property.
  EXPECT_GT(bijective_seen, 20);
}

TEST(RelationDifferentialTest, UnfoldPadWindowChainsMatchClosedForm) {
  // Sliding-window access x = V*i + r through pad-then-unfold chains: the
  // window form (Eq. (1)) must place every access inside one tile and
  // reconstruct the padded coordinate exactly.
  struct Cfg {
    int64_t V, M, ht, pad;
  };
  for (const Cfg& cfg : std::vector<Cfg>{{1, 3, 4, 0}, {1, 3, 4, 1}, {2, 3, 2, 0},
                                         {2, 5, 3, 2}, {3, 4, 2, 3}}) {
    const int64_t out_extent = 10;
    const int64_t D = cfg.V * (out_extent - 1) + cfg.M;
    const int64_t B = cfg.V * (cfg.ht - 1) + cfg.M;
    const int64_t S = cfg.V * cfg.ht;
    std::vector<int64_t> shape{D};
    LayoutSeq seq;
    if (cfg.pad > 0) {
      seq.Append(Primitive::Pad(0, cfg.pad, cfg.pad));
    }
    seq.Append(Primitive::Unfold(0, B, S));
    auto rel = LayoutRelation::FromSeq(seq, shape);
    ASSERT_TRUE(rel.ok());

    Expr i = MakeVar("i");
    Expr r = MakeVar("r");
    Expr x = ir::Add(ir::Mul(i, cfg.V), r);
    WindowPattern wp{i, cfg.V, r, cfg.M};
    auto mapped = rel->MapRead({x}, {wp});
    ASSERT_TRUE(mapped.ok());
    auto legacy = seq.MapRead(shape, {x}, {wp});
    ASSERT_TRUE(legacy.ok());
    for (size_t d = 0; d < mapped->size(); ++d) {
      EXPECT_EQ(ir::ToString((*mapped)[d]), ir::ToString((*legacy)[d]));
    }

    for (int64_t vi = 0; vi * cfg.V + cfg.M <= D + 2 * cfg.pad; ++vi) {
      for (int64_t vr = 0; vr < cfg.M; ++vr) {
        std::unordered_map<int, int64_t> env{{i->var_id, vi}, {r->var_id, vr}};
        int64_t tile = Eval((*mapped)[0], env);
        int64_t off = Eval((*mapped)[1], env);
        EXPECT_EQ(tile * S + off, cfg.V * vi + vr + cfg.pad)
            << "V=" << cfg.V << " M=" << cfg.M << " ht=" << cfg.ht << " pad=" << cfg.pad;
        EXPECT_GE(off, 0);
        EXPECT_LT(off, B);  // the window never straddles tiles
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical form: equivalent spellings coincide.
// ---------------------------------------------------------------------------

TEST(RelationFingerprintTest, EquivalentSpellingsCoincide) {
  // fuse ∘ split cancels.
  {
    LayoutSeq seq;
    seq.Append(Primitive::Fuse(0, 2));
    seq.Append(Primitive::Split(0, {4, 6}));
    auto rel = LayoutRelation::FromSeq(seq, {4, 6});
    ASSERT_TRUE(rel.ok());
    EXPECT_TRUE(rel->IsIdentity());
    EXPECT_EQ(rel->Fingerprint(), LayoutRelation::Identity({4, 6}).Fingerprint());
  }
  // Nested splits == one flat split.
  {
    LayoutSeq nested;
    nested.Append(Primitive::Split(0, {4, 6}));
    nested.Append(Primitive::Split(1, {2, 3}));
    LayoutSeq flat;
    flat.Append(Primitive::Split(0, {4, 2, 3}));
    auto rn = LayoutRelation::FromSeq(nested, {24});
    auto rf = LayoutRelation::FromSeq(flat, {24});
    ASSERT_TRUE(rn.ok() && rf.ok());
    EXPECT_EQ(rn->Fingerprint(), rf->Fingerprint());
  }
  // Two spellings of blocked NCHWc.
  {
    LayoutSeq a;
    a.Append(Primitive::Split(1, {4, 8}));
    a.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
    LayoutSeq b;
    b.Append(Primitive::Split(1, {4, 2, 4}));
    b.Append(Primitive::Fuse(2, 2));
    b.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
    auto ra = LayoutRelation::FromSeq(a, {1, 32, 14, 14});
    auto rb = LayoutRelation::FromSeq(b, {1, 32, 14, 14});
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->Fingerprint(), rb->Fingerprint());
    EXPECT_EQ(ra->CanonicalState(), rb->CanonicalState());
  }
  // Non-overlapping unfold that exactly tiles == split.
  {
    LayoutSeq unfold;
    unfold.Append(Primitive::Unfold(0, 4, 4));
    LayoutSeq split;
    split.Append(Primitive::Split(0, {3, 4}));
    auto ru = LayoutRelation::FromSeq(unfold, {12});
    auto rs = LayoutRelation::FromSeq(split, {12});
    ASSERT_TRUE(ru.ok() && rs.ok());
    EXPECT_EQ(ru->Fingerprint(), rs->Fingerprint());
  }
  // Two pads == one combined pad.
  {
    LayoutSeq two;
    two.Append(Primitive::Pad(0, 1, 0));
    two.Append(Primitive::Pad(0, 0, 1));
    LayoutSeq one;
    one.Append(Primitive::Pad(0, 1, 1));
    auto rt = LayoutRelation::FromSeq(two, {5});
    auto ro = LayoutRelation::FromSeq(one, {5});
    ASSERT_TRUE(rt.ok() && ro.ok());
    EXPECT_EQ(rt->Fingerprint(), ro->Fingerprint());
  }
}

TEST(RelationFingerprintTest, DistinctLayoutsDiffer) {
  LayoutSeq a;
  a.Append(Primitive::Split(0, {4, 6}));
  LayoutSeq b;
  b.Append(Primitive::Split(0, {6, 4}));
  auto ra = LayoutRelation::FromSeq(a, {24});
  auto rb = LayoutRelation::FromSeq(b, {24});
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NE(ra->Fingerprint(), rb->Fingerprint());
  // Shape is part of the identity: the same steps over another shape differ.
  auto rc = LayoutRelation::FromSeq(a, {24, 2});
  ASSERT_TRUE(rc.ok());
  EXPECT_NE(ra->Fingerprint(), rc->Fingerprint());
  // And a layout is never the identity fingerprint unless it is the identity.
  EXPECT_NE(ra->Fingerprint(), LayoutRelation::Identity({24}).Fingerprint());
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

TEST(RelationQueryTest, BlockedLayoutStridesAndDigits) {
  // NOHW {1,32,14,14} -> N O/8 H W 8: canonical dim 1 (O) is split 4x8 with
  // the 8-block innermost and physically unit-stride.
  LayoutSeq seq;
  seq.Append(Primitive::Split(1, {4, 8}));
  seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
  auto rel = LayoutRelation::FromSeq(seq, {1, 32, 14, 14});
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->exact());
  EXPECT_TRUE(rel->IsBijective());
  EXPECT_EQ(rel->InnerStrideOf(1), 1);       // O advances physically by 1
  EXPECT_EQ(rel->CoalescedRun(1), 8);        // ... for 8 consecutive elements
  EXPECT_EQ(rel->InnerStrideOf(3), 8);       // W advances by the block size
  EXPECT_EQ(rel->CoalescedRun(3), 1);
  EXPECT_EQ(rel->DigitExtents(1), (std::vector<int64_t>{8, 4}));  // innermost first
  EXPECT_TRUE(rel->UnfoldAccesses().empty());
}

TEST(RelationQueryTest, IdentityIsFullyCoalesced) {
  auto rel = LayoutRelation::Identity({4, 6});
  EXPECT_TRUE(rel.IsIdentity());
  EXPECT_EQ(rel.InnerStrideOf(1), 1);
  EXPECT_EQ(rel.CoalescedRun(1), 6);
  EXPECT_EQ(rel.InnerStrideOf(0), 6);
}

TEST(RelationQueryTest, UnfoldAccessDescribesOverlappedTiling) {
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 5, 3));
  auto rel = LayoutRelation::FromSeq(seq, {11});
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->ExpandsData());
  EXPECT_FALSE(rel->IsBijective());
  ASSERT_EQ(rel->UnfoldAccesses().size(), 1u);
  const auto& ua = rel->UnfoldAccesses()[0];
  EXPECT_EQ(ua.canonical_dim, 0);
  EXPECT_EQ(ua.phys_tile_dim, 0);
  EXPECT_EQ(ua.phys_offset_dim, 1);
  EXPECT_EQ(ua.tile_size, 5);
  EXPECT_EQ(ua.stride, 3);
  EXPECT_EQ(ua.tiles, 3);
}

// ---------------------------------------------------------------------------
// Relation-derived RL state.
// ---------------------------------------------------------------------------

TEST(RelationStateTest, BasicSequencesAgreeWithLegacyStateVector) {
  // For a sequence already in canonical spelling, the relation state is the
  // legacy per-primitive encoding of that same spelling (compat shim).
  LayoutSeq seq;
  seq.Append(Primitive::Split(0, {4, 6}));
  auto rel = LayoutRelation::FromSeq(seq, {24});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->CanonicalState(), seq.StateVector());
}

TEST(RelationStateTest, OpaqueRelationsFallBackToStepState) {
  LayoutSeq seq;
  seq.Append(Primitive::StoreAt(/*src_tensor=*/7, /*dim=*/0));
  auto rel = LayoutRelation::FromSeq(seq, {64, 32});
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->exact());
  EXPECT_EQ(rel->CanonicalState(), seq.StateVector());
}

TEST(RelationStateTest, EquivalentSpellingsFeedIdenticalStates) {
  std::mt19937_64 rng(99);
  int checked = 0;
  for (int iter = 0; iter < 100 && checked < 20; ++iter) {
    CorpusCase c = RandomCase(rng, /*allow_advanced=*/false);
    auto rel = LayoutRelation::FromSeq(c.seq, c.shape);
    ASSERT_TRUE(rel.ok());
    if (!rel->IsBijective()) {
      continue;
    }
    // Re-spell: append a split+fuse no-op on some dim, state must not change.
    std::vector<int64_t> phys = rel->ApplyToShape();
    int dim = -1;
    for (size_t d = 0; d < phys.size(); ++d) {
      if (phys[d] >= 4 && phys[d] % 2 == 0) {
        dim = static_cast<int>(d);
      }
    }
    if (dim < 0) {
      continue;
    }
    LayoutSeq respelled = c.seq;
    respelled.Append(Primitive::Split(dim, {phys[dim] / 2, 2}));
    respelled.Append(Primitive::Fuse(dim, 2));
    auto rel2 = LayoutRelation::FromSeq(respelled, c.shape);
    ASSERT_TRUE(rel2.ok());
    EXPECT_EQ(rel->Fingerprint(), rel2->Fingerprint()) << c.seq.ToString();
    EXPECT_EQ(rel->CanonicalState(), rel2->CanonicalState()) << c.seq.ToString();
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

// ---------------------------------------------------------------------------
// The unfold clamp split (ir::AffineAnalyzer::DecomposeClamped).
// ---------------------------------------------------------------------------

TEST(DecomposeClampedTest, SplitsSingleClampExactly) {
  Expr x = MakeVar("x");
  Expr y = MakeVar("y");
  ir::AffineAnalyzer az({{x->var_id, 4}, {y->var_id, 4}});
  // e = Min(2x + 1, 5) * 4 + y: affine except for the clamp, which is range-
  // indefinite over x in [0,4) (2x+1 spans [1,7] around the bound 5).
  Expr guard = ir::Add(ir::Mul(x, 2), Const(1));
  Expr e = ir::Add(ir::Mul(ir::Min(guard, Const(5)), 4), y);
  EXPECT_FALSE(az.Decompose(e).has_value());
  auto cf = az.DecomposeClamped(e);
  ASSERT_TRUE(cf.has_value());
  EXPECT_EQ(cf->bound, 5);
  for (int64_t vx = 0; vx < 4; ++vx) {
    for (int64_t vy = 0; vy < 4; ++vy) {
      std::unordered_map<int, int64_t> env{{x->var_id, vx}, {y->var_id, vy}};
      int64_t want = Eval(e, env);
      int64_t g = cf->guard.base + cf->guard.coeffs[0] * vx + cf->guard.coeffs[1] * vy;
      EXPECT_EQ(g, 2 * vx + 1);
      const ir::AffineForm& side = g <= cf->bound ? cf->then_form : cf->else_form;
      EXPECT_EQ(side.base + side.coeffs[0] * vx + side.coeffs[1] * vy, want);
    }
  }
}

TEST(DecomposeClampedTest, RejectsPlainAffineAndMultipleClamps) {
  Expr x = MakeVar("x");
  ir::AffineAnalyzer az({{x->var_id, 4}});
  // Plain affine: no clamp to split.
  EXPECT_FALSE(az.DecomposeClamped(ir::Mul(x, 3)).has_value());
  // Two distinct clamps: ambiguous, refused.
  Expr c1 = ir::Min(ir::Add(ir::Mul(x, 2), Const(1)), Const(5));
  Expr c2 = ir::Min(ir::Add(ir::Mul(x, 3), Const(1)), Const(7));
  EXPECT_FALSE(az.DecomposeClamped(ir::Add(c1, c2)).has_value());
}

TEST(DecomposeClampedTest, UnfoldAlignedNestSplitsTheEmittedAccess) {
  // The real thing: the canonical-representative rewrite of an overlapped
  // unfold (D=10, B=4, S=3 -> tiles=3) read under an aligned loop nest
  // e = eo*3 + ei. FloorDiv resolves to eo; the remaining residue is exactly
  // the clamp Min(eo, 2), range-indefinite because eo runs to 3.
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 4, 3));
  std::vector<int64_t> shape{10};
  auto rel = LayoutRelation::FromSeq(seq, shape);
  ASSERT_TRUE(rel.ok());
  Expr eo = MakeVar("eo");
  Expr ei = MakeVar("ei");
  Expr x = ir::Add(ir::Mul(eo, 3), ei);
  auto mapped = rel->MapRead({x});
  ASSERT_TRUE(mapped.ok());
  // Linearized physical offset over the 3x4 physical shape.
  Expr offset = ir::Add(ir::Mul((*mapped)[0], 4), (*mapped)[1]);
  ir::AffineAnalyzer az({{eo->var_id, 4}, {ei->var_id, 3}});
  EXPECT_FALSE(az.Decompose(offset).has_value());
  auto cf = az.DecomposeClamped(offset);
  ASSERT_TRUE(cf.has_value());
  for (int64_t vo = 0; vo < 4; ++vo) {
    for (int64_t vi = 0; vi < 3; ++vi) {
      std::unordered_map<int, int64_t> env{{eo->var_id, vo}, {ei->var_id, vi}};
      int64_t want = Eval(offset, env);
      int64_t g = cf->guard.base + cf->guard.coeffs[0] * vo + cf->guard.coeffs[1] * vi;
      const ir::AffineForm& side = g <= cf->bound ? cf->then_form : cf->else_form;
      EXPECT_EQ(side.base + side.coeffs[0] * vo + side.coeffs[1] * vi, want);
    }
  }
}

// ---------------------------------------------------------------------------
// Composition beyond round trips.
// ---------------------------------------------------------------------------

TEST(RelationComposeTest, ComposeMatchesSequentialConstruction) {
  std::mt19937_64 rng(424242);
  int checked = 0;
  for (int iter = 0; iter < 60 && checked < 25; ++iter) {
    CorpusCase a = RandomCase(rng, /*allow_advanced=*/true);
    auto ra = LayoutRelation::FromSeq(a.seq, a.shape);
    ASSERT_TRUE(ra.ok());
    CorpusCase b = RandomCase(rng, /*allow_advanced=*/true);
    // Rebuild b's sequence over a's physical shape; skip when inapplicable.
    std::vector<int64_t> mid = ra->ApplyToShape();
    std::vector<int64_t> probe = mid;
    if (!b.seq.ApplyToShape(probe).ok()) {
      continue;
    }
    auto rb = LayoutRelation::FromSeq(b.seq, mid);
    ASSERT_TRUE(rb.ok());
    auto composed = LayoutRelation::Compose(*rb, *ra);
    ASSERT_TRUE(composed.ok());
    // Composition == running both step lists from scratch.
    LayoutSeq both = a.seq;
    for (const Primitive& p : b.seq.primitives()) {
      both.Append(p);
    }
    auto direct = LayoutRelation::FromSeq(both, a.shape);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(composed->Fingerprint(), direct->Fingerprint());
    EXPECT_EQ(composed->ApplyToShape(), probe);
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(RelationComposeTest, ShapeMismatchRejected) {
  auto a = LayoutRelation::Identity({4, 6});
  auto b = LayoutRelation::Identity({6, 4});
  EXPECT_FALSE(LayoutRelation::Compose(b, a).ok());
}

}  // namespace
}  // namespace alt::layout

// serving::Server: dynamic batching (size and timeout triggers), shutdown
// drain, per-request failure isolation, hot-swap under live traffic (run
// under TSan in CI), and the operator metrics surface.

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/core/artifact.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/serving/server.h"
#include "src/support/metrics.h"

namespace alt::serving {
namespace {

using graph::Graph;
using graph::LayoutAssignment;

Graph SmallWorkload() {
  Graph g("served_conv");
  int x = g.AddInput("x", {1, 4, 10, 10});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {8, 4, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {8});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

void AssignSplitLayouts(const Graph& g, LayoutAssignment& la) {
  for (const auto& t : g.tensors()) {
    if (t.shape.size() == 4 && t.shape[1] % 4 == 0) {
      layout::LayoutSeq seq;
      seq.Append(layout::Primitive::Split(1, {t.shape[1] / 4, 4}));
      la.Set(t.id, seq);
    }
  }
}

runtime::TensorDataMap MakeRequest(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  return data;
}

struct Workload {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  loop::LoweredNetwork net;

  Workload() {
    AssignSplitLayouts(g, la);
    auto lowered = loop::LowerNetworkNaive(g, la, true);
    ALT_CHECK(lowered.ok());
    net = std::move(*lowered);
  }

  std::vector<float> Expected(uint64_t seed) const {
    auto session = runtime::InferenceSession::Create(g, la, net);
    ALT_CHECK(session.ok());
    auto out = session->Run(MakeRequest(g, seed));
    ALT_CHECK(out.ok());
    return *out;
  }
};

TEST(Server, InferMatchesDirectSessionBitExactly) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 4;
  options.policy.max_delay_us = 500;
  options.workers = 2;
  options.intra_batch_threads = 2;
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto out = server.Infer("m", MakeRequest(w.g, seed));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    std::vector<float> expected = w.Expected(seed);
    ASSERT_EQ(out->size(), expected.size());
    EXPECT_EQ(0, std::memcmp(out->data(), expected.data(),
                             expected.size() * sizeof(float)))
        << "seed " << seed;
  }
}

TEST(Server, TimeoutDispatchesPartialBatch) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 64;  // never filled by this test
  options.policy.max_delay_us = 1000;
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  // 3 requests << max_batch_size: only the timeout can release them.
  std::vector<std::future<Response>> futures;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    futures.push_back(server.Submit("m", MakeRequest(w.g, seed)));
  }
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto out = futures[seed - 1].get();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, w.Expected(seed));
  }
  MetricsSnapshot metrics = server.Metrics();
  EXPECT_GE(metrics.counter("serving.batches"), 1);
  const HistogramSnapshot* sizes = metrics.histogram("serving.batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_LE(sizes->max, 3.0);  // a partial batch, never a full 64
  EXPECT_EQ(server.queue_depth(), 0);
}

TEST(Server, FullBatchDispatchesWithoutWaitingForTimeout) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 4;
  options.policy.max_delay_us = 60'000'000;  // any timeout dispatch hangs the test
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  std::vector<std::future<Response>> futures;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    futures.push_back(server.Submit("m", MakeRequest(w.g, seed)));
  }
  for (auto& f : futures) {
    auto out = f.get();  // resolves only because the size trigger fired
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  MetricsSnapshot metrics = server.Metrics();
  EXPECT_EQ(metrics.counter("serving.completed"), 4);
}

TEST(Server, ShutdownDrainsQueuedRequests) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 64;
  options.policy.max_delay_us = 60'000'000;  // only the drain can release these
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  std::vector<std::future<Response>> futures;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    futures.push_back(server.Submit("m", MakeRequest(w.g, seed)));
  }
  server.Shutdown();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto out = futures[seed - 1].get();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, w.Expected(seed));
  }
  EXPECT_EQ(server.queue_depth(), 0);
  // Post-shutdown admission is rejected, not dropped.
  auto late = server.Infer("m", MakeRequest(w.g, 9));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST(Server, OneBadRequestFailsAloneInItsBatch) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 3;
  options.policy.max_delay_us = 60'000'000;  // force the 3 into one batch
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  runtime::TensorDataMap bad = MakeRequest(w.g, 2);
  bad.erase(bad.begin()->first);  // missing feed
  auto good_a = server.Submit("m", MakeRequest(w.g, 1));
  auto bad_f = server.Submit("m", std::move(bad));
  auto good_b = server.Submit("m", MakeRequest(w.g, 3));

  auto out_a = good_a.get();
  auto out_bad = bad_f.get();
  auto out_b = good_b.get();
  ASSERT_TRUE(out_a.ok()) << out_a.status().ToString();
  EXPECT_FALSE(out_bad.ok());
  ASSERT_TRUE(out_b.ok()) << out_b.status().ToString();
  EXPECT_EQ(*out_a, w.Expected(1));
  EXPECT_EQ(*out_b, w.Expected(3));
  MetricsSnapshot metrics = server.Metrics();
  EXPECT_EQ(metrics.counter("serving.completed"), 2);
  EXPECT_EQ(metrics.counter("serving.failed"), 1);
}

TEST(Server, RejectsUnknownModelAndFullQueue) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 64;
  options.policy.max_delay_us = 60'000'000;  // nothing dispatches during the test
  options.queue_capacity = 2;
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  auto unknown = server.Infer("nope", MakeRequest(w.g, 1));
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto a = server.Submit("m", MakeRequest(w.g, 1));
  auto b = server.Submit("m", MakeRequest(w.g, 2));
  auto overflow = server.Submit("m", MakeRequest(w.g, 3)).get();
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server.Metrics().counter("serving.rejected"), 2);
  server.Shutdown();  // drains a and b
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
}

TEST(Server, DuplicateModelNameRejected) {
  Workload w;
  Server server;
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());
  EXPECT_FALSE(server.AddModel("m", w.g, w.la, w.net).ok());
}

TEST(Server, SwapValidatesServingInterface) {
  Workload w;
  Server server;
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  // Unknown model.
  EXPECT_EQ(server.SwapModel("nope", w.g, w.la, w.net).code(), StatusCode::kNotFound);
}

TEST(Server, SwapRejectsChangedInterface) {
  Workload w;
  Server server;
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  // A graph with a different input shape must not swap in.
  Graph other("served_conv");
  int x = other.AddInput("x", {1, 4, 12, 12});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = other.AddPad(x, pad, "pad");
  int ow = other.AddConstant("w", {8, 4, 3, 3});
  graph::ConvAttrs attrs;
  int c = other.AddConv(graph::OpKind::kConv2d, p, ow, attrs, "conv");
  int b = other.AddConstant("b", {8});
  other.AddRelu(other.AddBiasAdd(c, b, 1, "bias"), "relu");
  LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(other, la, true);
  ASSERT_TRUE(net.ok());
  Status swap = server.SwapModel("m", other, la, *net);
  EXPECT_FALSE(swap.ok());
  EXPECT_EQ(swap.code(), StatusCode::kInvalidArgument);
  // The live model still serves.
  EXPECT_TRUE(server.Infer("m", MakeRequest(w.g, 1)).ok());
}

// Hot-swap under live traffic: client threads hammer Infer while the main
// thread repeatedly swaps the model for a freshly built session of the same
// network. Every response must be bit-identical to the expected output —
// in-flight batches finish on the session they started with, so no request
// ever observes a half-swapped model. TSan (CI) checks the flip itself.
TEST(Server, HotSwapUnderLiveTrafficKeepsBitIdentity) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 4;
  options.policy.max_delay_us = 200;
  options.workers = 2;
  options.intra_batch_threads = 2;
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 12;
  std::vector<std::vector<float>> expected;
  for (int c = 0; c < kClients; ++c) {
    expected.push_back(w.Expected(100 + c));
  }

  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto out = server.Infer("m", MakeRequest(w.g, 100 + c));
        if (!out.ok() || *out != expected[c]) {
          ++mismatches[c];
        }
      }
    });
  }
  int swaps_done = 0;
  for (int s = 0; s < 8; ++s) {
    if (server.SwapModel("m", w.g, w.la, w.net).ok()) {
      ++swaps_done;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
  EXPECT_EQ(swaps_done, 8);
  EXPECT_EQ(server.Metrics().counter("serving.swaps"), 8);
}

// Tune a small network, serve it, then hot-swap in the artifact round-trip
// of the same network: the reproduction contract (save → load → re-lower is
// bit-identical) extends across a live hot reload.
TEST(Server, SwapFromReloadedArtifactStaysBitIdentical) {
  core::AltOptions alt_options;
  alt_options.budget = 80;
  alt_options.method = autotune::SearchMethod::kRandom;
  alt_options.seed = 7;
  graph::Graph g = SmallWorkload();
  auto tuned = core::Compile(g, sim::Machine::IntelCpu(), alt_options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();

  const std::string path = ::testing::TempDir() + "/served_swap.altart";
  Status saved = core::SaveArtifact(*tuned, sim::Machine::IntelCpu(), alt_options, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  auto loaded = core::LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Server server;
  ASSERT_TRUE(server.AddModel("m", tuned->graph, tuned->assignment,
                              {tuned->groups, tuned->programs})
                  .ok());
  runtime::TensorDataMap request = MakeRequest(tuned->graph, 7);
  auto before = server.Infer("m", request);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  Status swap = server.SwapModel("m", *loaded);
  ASSERT_TRUE(swap.ok()) << swap.ToString();
  auto after = server.Infer("m", request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(before->size(), after->size());
  EXPECT_EQ(0, std::memcmp(before->data(), after->data(),
                           before->size() * sizeof(float)));
  EXPECT_EQ(server.Metrics().counter("serving.swaps"), 1);
}

TEST(Server, MetricsExposeQueueDepthGaugeAndPerModelLatency) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 2;
  options.policy.max_delay_us = 500;
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ASSERT_TRUE(server.Infer("m", MakeRequest(w.g, seed)).ok());
  }
  MetricsSnapshot metrics = server.Metrics();
  EXPECT_EQ(metrics.counter("serving.requests"), 4);
  EXPECT_EQ(metrics.counter("serving.completed"), 4);
  EXPECT_EQ(metrics.gauge("serving.queue_depth"), 0);  // drained
  const HistogramSnapshot* latency = metrics.histogram("serving.m.request_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 4);
  EXPECT_GT(latency->p50, 0.0);
  EXPECT_GE(latency->p99, latency->p50);
  const HistogramSnapshot* waits = metrics.histogram("serving.queue_wait_us");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->count, 4);
}

TEST(Server, ExpiredDeadlineShedsBeforeExecution) {
  Workload w;
  ServerOptions options;
  options.policy.max_batch_size = 64;     // never fills: only the timer dispatches
  options.policy.max_delay_us = 200'000;  // requests sit queued for 200ms
  Server server(options);
  ASSERT_TRUE(server.AddModel("m", w.g, w.la, w.net).ok());

  // Deadlines far shorter than the dispatch timer: by the time a worker
  // claims these, they are already dead — shed with kDeadlineExceeded, no
  // batch slot spent.
  Server::SubmitOptions tight;
  tight.deadline_us = 1000;
  std::vector<std::future<Response>> doomed;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    doomed.push_back(server.Submit("m", MakeRequest(w.g, seed), tight));
  }
  for (auto& f : doomed) {
    auto out = f.get();
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
        << out.status().ToString();
  }
  MetricsSnapshot metrics = server.Metrics();
  EXPECT_EQ(metrics.counter("serving.deadline_rejected"), 3);
  EXPECT_EQ(metrics.counter("serving.completed"), 0);

  // A generous deadline — and no deadline at all — serve exactly as before.
  Server::SubmitOptions generous;
  generous.deadline_us = 60'000'000;
  auto relaxed = server.Submit("m", MakeRequest(w.g, 4), generous).get();
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  EXPECT_EQ(*relaxed, w.Expected(4));
  auto plain = server.Infer("m", MakeRequest(w.g, 5));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*plain, w.Expected(5));
  EXPECT_EQ(server.Metrics().counter("serving.deadline_rejected"), 3);
}

}  // namespace
}  // namespace alt::serving

// Graph construction, shape inference, network builders, topological order,
// and the propagation/conversion machinery at the graph level.

#include <gtest/gtest.h>

#include "src/autotune/layout_templates.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"

namespace alt::graph {
namespace {

TEST(ShapeInference, Conv2dBasic) {
  Graph g;
  int x = g.AddInput("x", {2, 3, 32, 32});
  int w = g.AddConstant("w", {8, 3, 5, 5});
  ConvAttrs attrs;
  attrs.stride[0] = attrs.stride[1] = 2;
  attrs.pad[0] = attrs.pad[1] = 2;
  int y = g.AddConv(OpKind::kConv2d, x, w, attrs);
  EXPECT_EQ(g.tensor(y).shape, (std::vector<int64_t>{2, 8, 16, 16}));
}

TEST(ShapeInference, DilatedConv) {
  Graph g;
  int x = g.AddInput("x", {1, 4, 20, 20});
  int w = g.AddConstant("w", {4, 4, 3, 3});
  ConvAttrs attrs;
  attrs.dilation[0] = attrs.dilation[1] = 3;
  int y = g.AddConv(OpKind::kConv2d, x, w, attrs);
  EXPECT_EQ(g.tensor(y).shape[2], 14);  // 20 - 3*(3-1) = 14
}

TEST(ShapeInference, TransposedConv) {
  Graph g;
  int x = g.AddInput("x", {1, 8, 7, 7});
  int w = g.AddConstant("w", {8, 4, 4, 4});
  ConvAttrs attrs;
  attrs.stride[0] = attrs.stride[1] = 2;
  attrs.pad[0] = attrs.pad[1] = 1;
  int y = g.AddConv(OpKind::kTransposedConv2d, x, w, attrs);
  EXPECT_EQ(g.tensor(y).shape, (std::vector<int64_t>{1, 4, 14, 14}));
}

TEST(ShapeInference, PoolingAndPad) {
  Graph g;
  int x = g.AddInput("x", {1, 4, 14, 14});
  PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad);
  EXPECT_EQ(g.tensor(p).shape, (std::vector<int64_t>{1, 4, 16, 16}));
  PoolAttrs attrs;
  attrs.window[0] = attrs.window[1] = 2;
  attrs.stride[0] = attrs.stride[1] = 2;
  int y = g.AddMaxPool2d(p, attrs);
  EXPECT_EQ(g.tensor(y).shape, (std::vector<int64_t>{1, 4, 8, 8}));
}

TEST(GraphStructure, ProducersAndConsumers) {
  Graph g;
  int x = g.AddInput("x", {4, 4});
  int a = g.AddRelu(x);
  int b = g.AddGelu(x);
  int c = g.AddAdd(a, b);
  EXPECT_EQ(g.ProducerOf(x), -1);
  EXPECT_TRUE(g.IsGraphInput(x));
  EXPECT_EQ(g.ConsumersOf(x).size(), 2u);
  EXPECT_EQ(g.ConsumersOf(a).size(), 1u);
  EXPECT_EQ(g.op(g.ProducerOf(c)).kind, OpKind::kAddTensors);
}

TEST(GraphStructure, TopoOrderRespectsDependencies) {
  Graph g;
  int x = g.AddInput("x", {4, 4});
  int a = g.AddRelu(x);
  int b = g.AddGelu(a);
  int c = g.AddAdd(a, b);
  (void)c;
  auto order = TopoOrder(g);
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<int>(i);
  }
  EXPECT_LT(pos[0], pos[1]);  // relu before gelu
  EXPECT_LT(pos[1], pos[2]);  // gelu before add
}

TEST(GraphStructure, TopoOrderHandlesDuplicateInput) {
  Graph g;
  int x = g.AddInput("x", {4});
  int a = g.AddRelu(x);
  int c = g.AddAdd(a, a);  // same tensor twice
  (void)c;
  EXPECT_EQ(TopoOrder(g).size(), 2u);
}

TEST(GraphStructure, ReshapeValidation) {
  Graph g;
  int x = g.AddInput("x", {2, 3, 4});
  int y = g.AddReshape(x, {6, 4});
  EXPECT_EQ(g.tensor(y).NumElements(), 24);
}

TEST(OperatorLabels, ClassifiesConvVariants) {
  Op op;
  op.kind = OpKind::kConv2d;
  EXPECT_EQ(OperatorLabel(op, 64), "C2D");
  op.conv.groups = 8;
  EXPECT_EQ(OperatorLabel(op, 64), "GRP");
  op.conv.groups = 64;
  EXPECT_EQ(OperatorLabel(op, 64), "DEP");
  op.conv.groups = 1;
  op.conv.dilation[0] = 2;
  EXPECT_EQ(OperatorLabel(op, 64), "DIL");
  op.kind = OpKind::kMatmul;
  EXPECT_EQ(OperatorLabel(op, 0), "GMM");
}

// ---------------------------------------------------------------------------
// Network builders: structural checks.
// ---------------------------------------------------------------------------

TEST(Networks, ResNet18Structure) {
  Graph g = BuildResNet18(1);
  // 20 convs + 1 FC matmul.
  EXPECT_EQ(g.ComplexOps().size(), 21u);
  // Output is the classifier bias-add over 1000 classes.
  const Op& last = g.ops().back();
  EXPECT_EQ(g.tensor(last.output).shape, (std::vector<int64_t>{1, 1000}));
  EXPECT_EQ(TopoOrder(g).size(), g.ops().size());
}

TEST(Networks, ResNet18BatchScaling) {
  Graph g1 = BuildResNet18(1);
  Graph g16 = BuildResNet18(16);
  EXPECT_EQ(g16.tensor(0).shape[0], 16);
  EXPECT_EQ(g1.ops().size(), g16.ops().size());
}

TEST(Networks, MobileNetV2Structure) {
  Graph g = BuildMobileNetV2(1);
  // 1 stem + 17 blocks (2-3 convs each) + last conv + FC.
  EXPECT_GT(g.ComplexOps().size(), 45u);
  int depthwise = 0;
  for (int id : g.ComplexOps()) {
    const Op& op = g.op(id);
    if (op.kind == OpKind::kConv2d && op.conv.groups > 1) {
      ++depthwise;
    }
  }
  EXPECT_EQ(depthwise, 17);
}

TEST(Networks, BertStructure) {
  Graph g = BuildBert(1, 768, 12);
  // 6 matmuls per layer x 12 layers.
  EXPECT_EQ(g.ComplexOps().size(), 72u);
  Graph tiny = BuildBert(1, 128, 2);
  EXPECT_EQ(tiny.ComplexOps().size(), 12u);
}

TEST(Networks, ResNet3dUses3dConvs) {
  Graph g = BuildResNet3d18(1);
  for (int id : g.ComplexOps()) {
    EXPECT_EQ(g.op(id).kind, OpKind::kConv3d);
  }
  EXPECT_EQ(g.tensor(0).shape, (std::vector<int64_t>{1, 3, 16, 112, 112}));
}

TEST(Networks, Fig12SubgraphsMatchPaperShapes) {
  Graph s1 = BuildFig12Subgraph(1);
  Graph s2 = BuildFig12Subgraph(2);
  EXPECT_EQ(s1.ComplexOps().size(), 2u);
  // Subgraph#2's 1x1 conv has 2048 output channels.
  const Op& last = s2.op(s2.ComplexOps().back());
  EXPECT_EQ(s2.tensor(last.output).shape[1], 2048);
}

TEST(Networks, FirstLayerPadsTo230) {
  Graph g = BuildResNetFirstLayer(1);
  const Op& pad = g.op(0);
  ASSERT_EQ(pad.kind, OpKind::kPad);
  EXPECT_EQ(g.tensor(pad.output).shape[2], 230);
}

// ---------------------------------------------------------------------------
// Propagation behaviour at the graph level.
// ---------------------------------------------------------------------------

TEST(PropagationGraph, StopsAtShapeChange) {
  Graph g;
  int x = g.AddInput("x", {1, 8, 4, 4});
  int w = g.AddConstant("w", {8, 8, 1, 1});
  ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs);
  int r = g.AddRelu(c);
  PoolAttrs pool;
  pool.global = true;
  int p = g.AddAvgPool2d(r, pool);  // shape changes: propagation must stop
  int r2 = g.AddRelu(p);
  (void)r2;
  LayoutAssignment la;
  la.Set(c, autotune::ChannelsLast(2));
  auto result = PropagateOutputLayout(g, la, c);
  EXPECT_EQ(result.forward_assigned.size(), 1u);  // only the first relu
  EXPECT_FALSE(la.Has(r2));
  EXPECT_TRUE(la.Has(r));
}

TEST(PropagationGraph, StopsAtAdvancedPrimitives) {
  Graph g;
  int x = g.AddInput("x", {1, 4, 8, 8});
  int r = g.AddRelu(x);
  int r2 = g.AddRelu(r);
  (void)r2;
  LayoutAssignment la;
  layout::LayoutSeq unfolded;
  unfolded.Append(layout::Primitive::Unfold(2, 4, 2));
  la.Set(r, unfolded);
  auto result = PropagateOutputLayout(g, la, r);
  EXPECT_TRUE(result.stopped_at_advanced);
  EXPECT_TRUE(result.forward_assigned.empty());
}

TEST(PropagationGraph, OverwriteReplacesStaleLayouts) {
  Graph g;
  int x = g.AddInput("x", {1, 8, 4, 4});
  int w = g.AddConstant("w", {8, 8, 1, 1});
  ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs);
  int r = g.AddRelu(c);
  LayoutAssignment la;
  la.Set(c, autotune::ChannelsLast(2));
  PropagateOutputLayout(g, la, c);
  ASSERT_TRUE(SameLayout(la.Get(r), autotune::ChannelsLast(2)));
  // Re-tune the conv output; without overwrite the relu keeps the old layout.
  auto blocked = autotune::BlockedChannels(g.tensor(c).shape, 4);
  ASSERT_TRUE(blocked.ok());
  la.Set(c, *blocked);
  PropagateOutputLayout(g, la, c, true, /*overwrite=*/false);
  EXPECT_TRUE(SameLayout(la.Get(r), autotune::ChannelsLast(2)));
  PropagateOutputLayout(g, la, c, true, /*overwrite=*/true);
  EXPECT_TRUE(SameLayout(la.Get(r), *blocked));
}

TEST(PropagationGraph, ConversionRewiresConsumer) {
  Graph g;
  int x = g.AddInput("x", {1, 4, 8, 8});
  int w1 = g.AddConstant("w1", {4, 4, 1, 1});
  int w2 = g.AddConstant("w2", {4, 4, 1, 1});
  ConvAttrs attrs;
  int c1 = g.AddConv(OpKind::kConv2d, x, w1, attrs);
  int c2 = g.AddConv(OpKind::kConv2d, c1, w2, attrs);
  int conv2_op = g.ProducerOf(c2);
  LayoutAssignment la;
  la.Set(c1, autotune::ChannelsLast(2));
  auto sat = RequestInputLayout(g, la, conv2_op, 0, autotune::Hwon());
  EXPECT_EQ(sat, InputSatisfaction::kConversionInserted);
  // conv2 now reads the converted tensor, whose producer is a LayoutConvert.
  int new_input = g.op(conv2_op).inputs[0];
  EXPECT_NE(new_input, c1);
  EXPECT_EQ(g.op(g.ProducerOf(new_input)).kind, OpKind::kLayoutConvert);
  // Requesting the SAME layout again is a no-op.
  auto again = RequestInputLayout(g, la, conv2_op, 0, autotune::Hwon());
  EXPECT_EQ(again, InputSatisfaction::kAlreadySame);
}

TEST(PhysicalShapeTest, AppliesAssignedSequence) {
  Graph g;
  int x = g.AddInput("x", {1, 32, 8, 8});
  LayoutAssignment la;
  auto blocked = autotune::BlockedChannels(g.tensor(x).shape, 8);
  ASSERT_TRUE(blocked.ok());
  la.Set(x, *blocked);
  auto shape = la.PhysicalShape(g, x);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, (std::vector<int64_t>{1, 4, 8, 8, 8}));
}

}  // namespace
}  // namespace alt::graph

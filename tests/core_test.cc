// Core facade + tuning-record serialization tests.

#include <gtest/gtest.h>

#include "src/core/alt.h"
#include "src/core/tuning_record.h"
#include "src/graph/networks.h"
#include "src/runtime/session.h"

namespace alt::core {
namespace {

graph::Graph SmallWorkload() {
  graph::Graph g("record_target");
  int x = g.AddInput("x", {1, 8, 12, 12});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {16});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

TEST(TuningRecord, RoundTripPreservesPerformance) {
  graph::Graph g = SmallWorkload();
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  options.budget = 150;
  options.method = autotune::SearchMethod::kRandom;
  auto tuned = Compile(g, machine, options);
  ASSERT_TRUE(tuned.ok());

  std::string text = SerializeTuningRecord(*tuned);
  EXPECT_NE(text.find("layout"), std::string::npos);
  EXPECT_NE(text.find("schedule"), std::string::npos);

  auto record = ParseTuningRecord(text);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  // Apply to a FRESH graph built the same way: no search this time.
  graph::Graph fresh = SmallWorkload();
  auto applied = ApplyTuningRecord(fresh, machine, *record);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  // Same layouts + schedules => same estimated performance.
  EXPECT_NEAR(applied->perf.latency_us, tuned->perf.latency_us,
              tuned->perf.latency_us * 0.01);
}

TEST(TuningRecord, AppliedNetworkIsNumericallyCorrect) {
  graph::Graph g = SmallWorkload();
  const auto& machine = sim::Machine::ArmCpu();
  AltOptions options;
  options.budget = 100;
  options.method = autotune::SearchMethod::kRandom;
  auto tuned = Compile(g, machine, options);
  ASSERT_TRUE(tuned.ok());
  auto record = ParseTuningRecord(SerializeTuningRecord(*tuned));
  ASSERT_TRUE(record.ok());
  graph::Graph fresh = SmallWorkload();
  auto applied = ApplyTuningRecord(fresh, machine, *record);
  ASSERT_TRUE(applied.ok());

  Rng rng(55);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(applied->graph, rng, data);
  loop::LoweredNetwork net;
  net.groups = applied->groups;
  net.programs = applied->programs;
  auto out = runtime::RunLoweredNetwork(applied->graph, applied->assignment, net, data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(runtime::ExecuteReference(applied->graph, data).ok());
  int out_id = net.groups.back().OutputTensor(applied->graph);
  EXPECT_LT(runtime::MaxAbsDiff(*out, data[out_id]), 5e-3);
}

TEST(TuningRecord, RejectsWrongNetwork) {
  graph::Graph g = SmallWorkload();
  AltOptions options;
  options.budget = 60;
  options.method = autotune::SearchMethod::kRandom;
  auto tuned = Compile(g, sim::Machine::IntelCpu(), options);
  ASSERT_TRUE(tuned.ok());
  auto record = ParseTuningRecord(SerializeTuningRecord(*tuned));
  ASSERT_TRUE(record.ok());
  bool has_layouts = !record->layouts.empty();
  graph::Graph other = graph::BuildSingleMatmul(8, 8, 8);
  auto applied = ApplyTuningRecord(other, sim::Machine::IntelCpu(), *record);
  // A record with layouts for unknown tensors must be rejected.
  if (has_layouts) {
    EXPECT_FALSE(applied.ok());
  }
}

TEST(TuningRecord, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseTuningRecord("bogus line here").ok());
  EXPECT_FALSE(ParseTuningRecord("layout t frobnicate:1").ok());
  auto empty = ParseTuningRecord("# only a comment\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->layouts.empty());
}

TEST(CoreFacade, VariantNames) {
  EXPECT_STREQ(VariantName(AltVariant::kFull), "ALT");
  EXPECT_STREQ(VariantName(AltVariant::kLoopOnly), "ALT-OL");
  EXPECT_STREQ(VariantName(AltVariant::kWithoutPropagation), "ALT-WP");
}

TEST(CoreFacade, PretrainedAgentIsCachedPerMachine) {
  const auto& a = SharedPretrainedAgent(sim::Machine::ArmCpu());
  const auto& b = SharedPretrainedAgent(sim::Machine::ArmCpu());
  EXPECT_EQ(&a, &b);  // same cache entry
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace alt::core

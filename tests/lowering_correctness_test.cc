// End-to-end numeric validation: graph -> (layouts, propagation) -> lowering
// -> interpreter must match the independent canonical reference for every
// operator kind and layout/schedule combination. This is the test that keeps
// the whole §4/§6 transformation machinery honest.

#include <gtest/gtest.h>

#include "src/autotune/layout_templates.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"

namespace alt {
namespace {

using graph::ConvConfig;
using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;

constexpr double kTol = 2e-3;  // float accumulation over up to ~1k terms

double Validate(const Graph& g, const LayoutAssignment& la, uint64_t seed = 7) {
  auto diff = runtime::ValidateAgainstReference(g, la, {.seed = seed});
  EXPECT_TRUE(diff.ok()) << diff.status().ToString();
  return diff.ok() ? *diff : 1e9;
}

// ---------------------------------------------------------------------------
// Canonical-layout lowering for each operator kind.
// ---------------------------------------------------------------------------

TEST(LoweringCanonical, Conv2d) {
  ConvConfig cfg;
  cfg.batch = 2;
  cfg.in_channels = 3;
  cfg.out_channels = 8;
  cfg.spatial[0] = cfg.spatial[1] = 9;
  cfg.kernel[0] = cfg.kernel[1] = 3;
  cfg.pad = 0;
  Graph g = graph::BuildSingleConv(OpKind::kConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Conv2dStrided) {
  ConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.spatial[0] = cfg.spatial[1] = 11;
  cfg.stride = 2;
  cfg.pad = 0;
  Graph g = graph::BuildSingleConv(OpKind::kConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Conv2dGrouped) {
  ConvConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.groups = 4;
  cfg.spatial[0] = cfg.spatial[1] = 7;
  cfg.pad = 0;
  Graph g = graph::BuildSingleConv(OpKind::kConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Conv2dDepthwise) {
  ConvConfig cfg;
  cfg.in_channels = 6;
  cfg.out_channels = 6;
  cfg.groups = 6;
  cfg.spatial[0] = cfg.spatial[1] = 8;
  cfg.pad = 0;
  Graph g = graph::BuildSingleConv(OpKind::kConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Conv2dDilated) {
  ConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 4;
  cfg.dilation = 2;
  cfg.spatial[0] = cfg.spatial[1] = 12;
  cfg.pad = 0;
  Graph g = graph::BuildSingleConv(OpKind::kConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Conv1dAnd3d) {
  ConvConfig cfg1;
  cfg1.in_channels = 4;
  cfg1.out_channels = 8;
  cfg1.spatial[0] = 16;
  cfg1.kernel[0] = 3;
  cfg1.pad = 0;
  Graph g1 = graph::BuildSingleConv(OpKind::kConv1d, cfg1);
  EXPECT_LT(Validate(g1, LayoutAssignment{}), kTol);

  ConvConfig cfg3;
  cfg3.in_channels = 3;
  cfg3.out_channels = 4;
  cfg3.spatial[0] = cfg3.spatial[1] = cfg3.spatial[2] = 6;
  cfg3.kernel[0] = cfg3.kernel[1] = cfg3.kernel[2] = 3;
  cfg3.pad = 0;
  Graph g3 = graph::BuildSingleConv(OpKind::kConv3d, cfg3);
  EXPECT_LT(Validate(g3, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, TransposedConv2dAnd3d) {
  ConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.spatial[0] = cfg.spatial[1] = 5;
  cfg.kernel[0] = cfg.kernel[1] = 3;
  cfg.stride = 2;
  cfg.pad = 1;
  Graph g = graph::BuildSingleConv(OpKind::kTransposedConv2d, cfg);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);

  ConvConfig cfg3;
  cfg3.in_channels = 3;
  cfg3.out_channels = 4;
  cfg3.spatial[0] = cfg3.spatial[1] = cfg3.spatial[2] = 4;
  cfg3.kernel[0] = cfg3.kernel[1] = cfg3.kernel[2] = 3;
  cfg3.stride = 2;
  cfg3.pad = 1;
  Graph g3 = graph::BuildSingleConv(OpKind::kTransposedConv3d, cfg3);
  EXPECT_LT(Validate(g3, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, Matmul) {
  Graph g = graph::BuildSingleMatmul(12, 16, 20);
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, PoolingPadSoftmaxEtc) {
  Graph g("misc");
  int x = g.AddInput("x", {2, 4, 10, 10});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  graph::PoolAttrs mp;
  mp.window[0] = mp.window[1] = 3;
  mp.stride[0] = mp.stride[1] = 2;
  int pooled = g.AddMaxPool2d(p, mp, "maxpool");
  graph::PoolAttrs gap;
  gap.global = true;
  int pooled2 = g.AddAvgPool2d(pooled, gap, "gap");
  int flat = g.AddReshape(pooled2, {2, 4}, "flatten");
  int soft = g.AddSoftmax(flat, "softmax");
  g.AddLayerNorm(soft, "ln");
  EXPECT_LT(Validate(g, LayoutAssignment{}), kTol);
}

TEST(LoweringCanonical, ElementwiseChainWithFusion) {
  Graph g("chain");
  int x = g.AddInput("x", {1, 8, 6, 6});
  int w = g.AddConstant("w", {8, 8, 1, 1});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv");
  int b = g.AddConstant("b", {8});
  int biased = g.AddBiasAdd(c, b, 1, "bias");
  int relu = g.AddRelu(biased, "relu");
  int gelu = g.AddGelu(relu, "gelu");
  g.AddMulScalar(gelu, 0.5, "scale");
  // Fusion happens (all elementwise, same layouts): one group for conv chain.
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].fused_ops.size(), 4u);
  EXPECT_LT(Validate(g, la), kTol);
}

// ---------------------------------------------------------------------------
// Layout-transformed lowering.
// ---------------------------------------------------------------------------

struct LayoutCase {
  const char* name;
  int which;  // 0 NOHW, 1 NHWO, 2 HWON, 3 blocked, 4 ALT template, 5 ALT+2level
};

class ConvLayoutCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(ConvLayoutCorrectness, MatchesReference) {
  int which = GetParam();
  Graph g("conv_layout");
  int x = g.AddInput("x", {1, 4, 10, 10});
  graph::PadAttrs padattrs;
  padattrs.before = {0, 0, 1, 1};
  padattrs.after = {0, 0, 1, 1};
  int p = g.AddPad(x, padattrs, "pad");
  int w = g.AddConstant("w", {8, 4, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {8});
  int biased = g.AddBiasAdd(c, b, 1, "bias");
  g.AddRelu(biased, "relu");

  const graph::Op& conv = g.op(g.ProducerOf(c));
  LayoutAssignment la;
  switch (which) {
    case 0:
      break;  // canonical NOHW
    case 1: {  // NHWO everywhere
      la.Set(c, autotune::ChannelsLast(2));
      la.Set(p, autotune::ChannelsLast(2));
      graph::PropagateOutputLayout(g, la, c);
      break;
    }
    case 2: {  // HWON output
      la.Set(c, autotune::Hwon());
      graph::PropagateOutputLayout(g, la, c);
      break;
    }
    case 3: {  // blocked NCHWc
      auto blocked_out = autotune::BlockedChannels(g.tensor(c).shape, 4);
      ASSERT_TRUE(blocked_out.ok());
      la.Set(c, *blocked_out);
      auto blocked_in = autotune::BlockedChannels(g.tensor(p).shape, 2);
      ASSERT_TRUE(blocked_in.ok());
      la.Set(p, *blocked_in);
      graph::PropagateOutputLayout(g, la, c);
      break;
    }
    case 4:
    case 5: {  // full ALT template with unfolded input
      autotune::ConvLayoutParams params;
      params.spatial_tiles = {5, 5};
      params.out_tile = 4;
      params.in_tile = 2;
      params.w_in_tile = 2;
      params.w_out_tile = 4;
      if (which == 5) {
        params.out_tile = 2;
        params.out_tile2 = 2;
      }
      auto layouts = autotune::MakeConvTemplates(g, conv, params);
      ASSERT_TRUE(layouts.ok()) << layouts.status().ToString();
      la.Set(c, layouts->output);
      la.Set(p, layouts->input);
      la.Set(w, layouts->weight);
      graph::PropagateOutputLayout(g, la, c);
      break;
    }
  }
  EXPECT_LT(Validate(g, la), kTol) << "layout case " << which;
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ConvLayoutCorrectness, ::testing::Range(0, 6));

TEST(LayoutCorrectness, GmmTemplates) {
  for (int which = 0; which < 3; ++which) {
    Graph g = graph::BuildSingleMatmul(16, 24, 32);
    const graph::Op& op = g.op(0);
    LayoutAssignment la;
    if (which == 1) {
      la.Set(op.inputs[1], autotune::TransposedB());  // NK
    } else if (which == 2) {
      autotune::GmmLayoutParams params{4, 8, 6};  // NKn-style tiling
      auto layouts = autotune::MakeGmmTemplates(g, op, params);
      ASSERT_TRUE(layouts.ok());
      la.Set(op.output, layouts->c);
      la.Set(op.inputs[0], layouts->a);
      la.Set(op.inputs[1], layouts->b);
    }
    EXPECT_LT(Validate(g, la), kTol) << "gmm case " << which;
  }
}

TEST(LayoutCorrectness, StridedConvWithUnfoldTemplate) {
  // Stride-2 7x7 conv (the ResNet first layer shape, scaled down).
  Graph g("strided");
  int x = g.AddInput("x", {1, 3, 20, 20});
  graph::PadAttrs padattrs;
  padattrs.before = {0, 0, 3, 3};
  padattrs.after = {0, 0, 3, 3};
  int p = g.AddPad(x, padattrs, "pad");
  int w = g.AddConstant("w", {8, 3, 7, 7});
  graph::ConvAttrs attrs;
  attrs.stride[0] = attrs.stride[1] = 2;
  int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
  const graph::Op& conv = g.op(g.ProducerOf(c));
  ASSERT_EQ(g.tensor(c).shape[2], 10);

  autotune::ConvLayoutParams params;
  params.spatial_tiles = {5, 5};
  params.out_tile = 8;
  params.in_tile = 3;
  params.w_in_tile = 1;
  params.w_out_tile = 8;
  auto layouts = autotune::MakeConvTemplates(g, conv, params);
  ASSERT_TRUE(layouts.ok()) << layouts.status().ToString();
  LayoutAssignment la;
  la.Set(c, layouts->output);
  la.Set(p, layouts->input);
  la.Set(w, layouts->weight);
  EXPECT_LT(Validate(g, la), kTol);
}

TEST(LayoutCorrectness, DilatedConvUnfold) {
  Graph g("dilated");
  int x = g.AddInput("x", {1, 2, 16, 16});
  int w = g.AddConstant("w", {4, 2, 3, 3});
  graph::ConvAttrs attrs;
  attrs.dilation[0] = attrs.dilation[1] = 2;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv");
  const graph::Op& conv = g.op(g.ProducerOf(c));
  ASSERT_EQ(g.tensor(c).shape[2], 12);
  autotune::ConvLayoutParams params;
  params.spatial_tiles = {4, 4};
  params.out_tile = 4;
  params.in_tile = 2;
  params.w_in_tile = 2;
  params.w_out_tile = 4;
  auto layouts = autotune::MakeConvTemplates(g, conv, params);
  ASSERT_TRUE(layouts.ok()) << layouts.status().ToString();
  LayoutAssignment la;
  la.Set(c, layouts->output);
  la.Set(x, layouts->input);
  la.Set(w, layouts->weight);
  EXPECT_LT(Validate(g, la), kTol);
}

// ---------------------------------------------------------------------------
// Propagation behaviour (Algorithm 1) with numerics.
// ---------------------------------------------------------------------------

TEST(Propagation, ForwardPropagationAlignsFusion) {
  Graph g("prop");
  int x = g.AddInput("x", {1, 8, 8, 8});
  int w = g.AddConstant("w", {8, 8, 3, 3});
  graph::PadAttrs padattrs;
  padattrs.before = {0, 0, 1, 1};
  padattrs.after = {0, 0, 1, 1};
  int p = g.AddPad(x, padattrs, "pad");
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
  int r = g.AddRelu(c, "relu");
  int s = g.AddMulScalar(r, 2.0, "scale");
  (void)s;

  LayoutAssignment la;
  la.Set(c, autotune::ChannelsLast(2));
  auto result = graph::PropagateOutputLayout(g, la, c);
  // relu and scale outputs both picked up the layout.
  EXPECT_EQ(result.forward_assigned.size(), 2u);
  // With aligned layouts the three ops fuse into one group.
  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_EQ(groups.size(), 2u);  // pad group + conv group
  EXPECT_EQ(groups[1].fused_ops.size(), 2u);
  EXPECT_LT(Validate(g, la), kTol);
}

TEST(Propagation, FusionConflictWithoutPropagation) {
  Graph g("noprop");
  int x = g.AddInput("x", {1, 8, 8, 8});
  int w = g.AddConstant("w", {8, 8, 1, 1});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv");
  g.AddRelu(c, "relu");
  LayoutAssignment la;
  la.Set(c, autotune::ChannelsLast(2));
  // No propagation: relu output stays canonical -> layouts differ -> no fuse
  // (the Fig. 6 fusion conflict).
  auto groups = loop::PartitionGraph(g, la, true);
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_LT(Validate(g, la), kTol);
}

TEST(Propagation, ConversionOpInsertedBetweenComplexOps) {
  Graph g("two_convs");
  int x = g.AddInput("x", {1, 4, 8, 8});
  int w1 = g.AddConstant("w1", {8, 4, 1, 1});
  int w2 = g.AddConstant("w2", {8, 8, 1, 1});
  graph::ConvAttrs attrs;
  int c1 = g.AddConv(OpKind::kConv2d, x, w1, attrs, "conv1");
  int c2 = g.AddConv(OpKind::kConv2d, c1, w2, attrs, "conv2");
  (void)c2;

  LayoutAssignment la;
  la.Set(c1, autotune::ChannelsLast(2));  // conv1 output tuned
  size_t ops_before = g.ops().size();
  // conv2 requests a blocked input layout; producer is complex -> conversion.
  auto blocked = autotune::BlockedChannels(g.tensor(c1).shape, 4);
  ASSERT_TRUE(blocked.ok());
  auto sat = graph::RequestInputLayout(g, la, g.ProducerOf(c2), 0, *blocked);
  EXPECT_EQ(sat, graph::InputSatisfaction::kConversionInserted);
  EXPECT_EQ(g.ops().size(), ops_before + 1);
  EXPECT_LT(Validate(g, la), kTol);
}

TEST(Propagation, SimpleProducerWritesRequestedLayout) {
  Graph g("pad_writes");
  int x = g.AddInput("x", {1, 4, 6, 6});
  graph::PadAttrs padattrs;
  padattrs.before = {0, 0, 1, 1};
  padattrs.after = {0, 0, 1, 1};
  int p = g.AddPad(x, padattrs, "pad");
  int w = g.AddConstant("w", {4, 4, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
  LayoutAssignment la;
  auto sat = graph::RequestInputLayout(g, la, g.ProducerOf(c), 0, autotune::ChannelsLast(2));
  EXPECT_EQ(sat, graph::InputSatisfaction::kProducerWrites);  // Fig. 5b
  EXPECT_TRUE(la.Has(p));
  auto sat_w = graph::RequestInputLayout(g, la, g.ProducerOf(c), 1,
                                         autotune::ChannelsLast(2));
  EXPECT_EQ(sat_w, graph::InputSatisfaction::kOffline);  // constant weight
  EXPECT_LT(Validate(g, la), kTol);
}

// ---------------------------------------------------------------------------
// Scheduled lowering (tiling / vectorization / unroll / rotation).
// ---------------------------------------------------------------------------

class ScheduledLowering : public ::testing::TestWithParam<int> {};

TEST_P(ScheduledLowering, TiledMatchesReference) {
  int variant = GetParam();
  Graph g("sched");
  int x = g.AddInput("x", {1, 8, 12, 12});
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::PadAttrs padattrs;
  padattrs.before = {0, 0, 1, 1};
  padattrs.after = {0, 0, 1, 1};
  int p = g.AddPad(x, padattrs, "pad");
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
  int r = g.AddRelu(c, "relu");
  (void)r;

  LayoutAssignment la;
  la.Set(c, autotune::ChannelsLast(2));
  graph::PropagateOutputLayout(g, la, c);

  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_EQ(groups.size(), 2u);

  // Build schedules for the conv group.
  auto sig = loop::GroupSignature(g, la, groups[1]);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule sched;
  ASSERT_EQ(sig->spatial_extents.size(), 4u);   // N H W O (channels-last)
  ASSERT_EQ(sig->reduction_extents.size(), 3u);  // I KH KW
  auto mk = [](int64_t o, int64_t m, int64_t i, int64_t v) {
    loop::SpatialAxisSchedule a;
    a.outer = o;
    a.mid = m;
    a.inner = i;
    a.vec = v;
    return a;
  };
  switch (variant) {
    case 0:  // tile H,W and vectorize O
      sched.spatial = {mk(1, 1, 1, 1), mk(3, 2, 2, 1), mk(2, 3, 2, 1), mk(2, 1, 2, 4)};
      sched.reduction = {{4, 2}, {3, 1}, {1, 3}};
      break;
    case 1:  // heavy mid tiles, unroll
      sched.spatial = {mk(1, 1, 1, 1), mk(2, 6, 1, 1), mk(6, 1, 2, 1), mk(1, 2, 8, 1)};
      sched.reduction = {{2, 4}, {1, 3}, {3, 1}};
      sched.unroll_inner_reduction = true;
      break;
    case 2:  // rotation + parallel over two axes
      sched.spatial = {mk(1, 1, 1, 1), mk(12, 1, 1, 1), mk(4, 3, 1, 1), mk(4, 1, 4, 1)};
      sched.reduction = {{8, 1}, {1, 3}, {3, 1}};
      sched.parallel_axes = 2;
      sched.inner_order_rotation = 2;
      break;
  }

  auto program = loop::LowerGroup(g, la, groups[1], sched);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Run: pad group naive + scheduled conv group.
  auto pad_prog = loop::LowerGroupNaive(g, la, groups[0]);
  ASSERT_TRUE(pad_prog.ok());
  loop::LoweredNetwork net;
  net.groups = groups;
  net.programs = {std::move(*pad_prog), std::move(*program)};

  Rng rng(13);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  auto out = runtime::RunLoweredNetwork(g, la, net, data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(runtime::ExecuteReference(g, data).ok());
  int out_id = net.groups.back().OutputTensor(g);
  EXPECT_LT(runtime::MaxAbsDiff(*out, data[out_id]), kTol) << "variant " << variant;
}

INSTANTIATE_TEST_SUITE_P(Variants, ScheduledLowering, ::testing::Range(0, 3));

// ---------------------------------------------------------------------------
// Whole small networks, canonical layouts.
// ---------------------------------------------------------------------------

TEST(NetworkCorrectness, Fig12SubgraphCanonical) {
  Graph g = graph::BuildFig12Subgraph(1);
  // Shrink channels for test speed by rebuilding a small analogue.
  Graph small("fig12_small");
  int x = small.AddInput("data", {1, 8, 7, 7});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int px = small.AddPad(x, pad, "pad");
  int w1 = small.AddConstant("w1", {8, 8, 3, 3});
  graph::ConvAttrs a1;
  int c1 = small.AddConv(OpKind::kConv2d, px, w1, a1, "c2d_3x3");
  int w2 = small.AddConstant("w2", {16, 8, 1, 1});
  graph::ConvAttrs a2;
  small.AddConv(OpKind::kConv2d, c1, w2, a2, "c2d_1x1");
  EXPECT_LT(Validate(small, graph::LayoutAssignment{}), kTol);
  EXPECT_EQ(g.ComplexOps().size(), 2u);
}

}  // namespace
}  // namespace alt

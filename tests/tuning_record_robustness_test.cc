// Feeds malformed, truncated, and garbage tuning-record text to the parser
// and asserts it reports Status instead of crashing. Before the checked
// numeric parsing in support/string_util.h, lines like "par=x" or a split
// factor wider than int64 threw from std::stoi/std::stoll and aborted the
// process (the parser is exception-free by design, so nothing caught them).

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/tuning_journal.h"
#include "src/support/crc32.h"
#include "src/core/tuning_record.h"
#include "src/loop/serialization.h"
#include "src/support/fileio.h"
#include "src/support/string_util.h"

namespace alt {
namespace {

graph::Graph RecordTargetGraph() {
  graph::Graph g("record_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

TEST(TuningRecordRobustness, NonNumericScheduleFieldsReturnStatus) {
  for (const char* text : {
           "schedule conv par=x",
           "schedule conv rot=abc",
           "schedule conv s=a,b,c,d",
           "schedule conv r=1,z",
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, OutOfRangeIntegersReturnStatus) {
  for (const char* text : {
           "layout t split:9999999999999999999:2",
           "layout t split:1:99999999999999999999999999",
           "schedule conv par=99999999999999999999",
           "schedule conv s=99999999999999999999999,1,1,1",
           "layout t unfold:0:123456789123456789123456789:1",
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, TruncatedPrimitivesReturnStatus) {
  for (const char* text : {
           "layout t split:1",          // missing factors
           "layout t unfold:1:2",       // unfold needs 4 fields
           "layout t pad:0:1",          // pad needs 4 fields
           "layout t store_at:3",       // store_at needs 3 fields
           "layout t split::",          // empty numeric fields
           "layout t :::",              // empty kind
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, GarbageLinesReturnStatus) {
  EXPECT_FALSE(core::ParseTuningRecord("lay\0out t split:1:2").ok());
  EXPECT_FALSE(core::ParseTuningRecord("schedule").ok());
  EXPECT_FALSE(core::ParseTuningRecord("layout").ok());
  EXPECT_FALSE(core::ParseTuningRecord("\x01\x02\x03 \x04").ok());
}

TEST(TuningRecordRobustness, ValidLinesStillParse) {
  auto record = core::ParseTuningRecord(
      "# comment\n"
      "layout w split:1:4,8 reorder:0,2,1\n"
      "schedule conv s=2,1,7,4;1,1,16,1 r=4,4 par=2 rot=1 unroll=1\n");
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_EQ(record->layouts.size(), 1u);
  EXPECT_EQ(record->layouts[0].second.size(), 2u);
  auto sched = record->schedules.find("conv");
  ASSERT_NE(sched, record->schedules.end());
  ASSERT_EQ(sched->second.spatial.size(), 2u);
  EXPECT_EQ(sched->second.spatial[0].vec, 4);
  EXPECT_EQ(sched->second.parallel_axes, 2);
  EXPECT_TRUE(sched->second.unroll_inner_reduction);
}

TEST(TuningRecordRobustness, CheckedParsersRejectEdgeCases) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
  EXPECT_FALSE(ParseInt64("-99999999999999999999999").ok());
  EXPECT_FALSE(ParseInt32("2147483648").ok());
  EXPECT_FALSE(ParseInt32("-2147483649").ok());
  ASSERT_TRUE(ParseInt64("-42").ok());
  EXPECT_EQ(*ParseInt64("-42"), -42);
  ASSERT_TRUE(ParseInt32("2147483647").ok());
  EXPECT_EQ(*ParseInt32("2147483647"), 2147483647);
}

TEST(TuningRecordRobustness, StructurallyInvalidSchedulesReturnStatus) {
  // The token grammar accepts any integers; ValidateSchedule must reject
  // zero/negative tile factors and wild axis counts at the parse boundary.
  for (const char* text : {
           "schedule conv s=0,1,7,4;1,1,16,1 r=4,4",    // zero spatial factor
           "schedule conv s=-2,1,7,4;1,1,16,1 r=4,4",   // negative spatial factor
           "schedule conv s=2,1,7,4;1,1,16,1 r=0,4",    // zero reduction factor
           "schedule conv s=2,1,7,4;1,1,16,1 r=-1,4",   // negative reduction factor
           "schedule conv par=-1",                      // negative axis count
           "schedule conv par=1000",                    // absurd axis count
           "schedule conv rot=-3",
           "schedule conv rot=999",
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, ApplyRejectsUnknownTensor) {
  graph::Graph g = RecordTargetGraph();
  auto record = core::ParseTuningRecord("layout no_such_tensor split:1:4,8\n");
  ASSERT_TRUE(record.ok());
  auto applied = core::ApplyTuningRecord(g, sim::Machine::IntelCpu(), *record);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(applied.status().message().find("no_such_tensor"), std::string::npos);
}

TEST(TuningRecordRobustness, ApplyRejectsUnknownOp) {
  graph::Graph g = RecordTargetGraph();
  auto record =
      core::ParseTuningRecord("schedule no_such_op s=2,1,7,4;1,1,16,1 r=4,4\n");
  ASSERT_TRUE(record.ok());
  auto applied = core::ApplyTuningRecord(g, sim::Machine::IntelCpu(), *record);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(applied.status().message().find("no_such_op"), std::string::npos);
}

TEST(TuningRecordRobustness, ApplyRejectsLayoutThatDoesNotFitTheShape) {
  // A split on a dim the tensor does not have: a record from a different
  // network. Must fail with context, not crash deep inside lowering.
  graph::Graph g = RecordTargetGraph();
  auto record = core::ParseTuningRecord("layout x split:9:2,2\n");
  ASSERT_TRUE(record.ok());
  auto applied = core::ApplyTuningRecord(g, sim::Machine::IntelCpu(), *record);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

TEST(TuningRecordRobustness, JournalCorruptionCorpusNeverCrashesTheLoader) {
  // LoadTuningJournal must treat arbitrary bytes as "some valid prefix plus
  // a discarded tail" — never crash, never error on content.
  const std::string good =
      "journal v1 fp=00000000000000ff";  // payload whose framing we corrupt
  auto frame = [](const std::string& payload) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x ", Crc32(payload));
    return crc + payload + "\n";
  };
  const std::string corpus[] = {
      "",                                      // empty file
      "\n\n\n",                                // blank lines, no framing
      "garbage with no checksum at all\n",     // unframed text
      "deadbeef " + good + "\n",               // wrong checksum
      "DEADBEEF " + good + "\n",               // uppercase hex is invalid
      frame(good),                             // valid header only
      frame(good) + "tail without newline",    // torn final line
      frame(good) + frame("measure 0123456789abcdef ok 1.5") +
          frame("measure not-16-hex-chars ok 1.5"),       // bad site field
      frame(good) + frame("measure 0123456789abcdef zap"), // bad outcome word
      frame(good) + frame("batch spent=x best=y"),         // bad batch fields
      frame(good) +
          frame("batch spent=99999999999999999999 best=1.5"),  // spent > int64
      frame(good) + frame("batch spent=4294967296 best=1.5"),  // spent > int32
      frame(good) + frame("future-kind anything goes"),    // unknown kind: ok
      std::string(1, '\0') + frame(good),                  // NUL first byte
      frame("journal v9 fp=0000000000000000"),             // unsupported header
  };
  std::string path = ::testing::TempDir() + "journal_corpus.altj";
  for (size_t i = 0; i < sizeof(corpus) / sizeof(corpus[0]); ++i) {
    ASSERT_TRUE(WriteFile(path, corpus[i]).ok());
    auto loaded = core::LoadTuningJournal(path);
    ASSERT_TRUE(loaded.ok()) << "corpus entry " << i << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->valid_bytes + loaded->discarded_bytes,
              static_cast<int64_t>(corpus[i].size()))
        << "corpus entry " << i;
    if (loaded->has_header) {
      EXPECT_EQ(loaded->fingerprint, 0xffull) << "corpus entry " << i;
    }
  }
  RemoveFile(path);
}

TEST(TuningRecordRobustness, BatchSpentParsingIsRangeChecked) {
  // The spent counter is parsed with checked 32-bit conversion: a value that
  // does not fit is a corrupt record (discarded like any other), never a
  // silently-truncated count. The old strtol + static_cast path would have
  // accepted 4294967296 as 0 on LP64.
  auto frame = [](const std::string& payload) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x ", Crc32(payload));
    return crc + payload + "\n";
  };
  const std::string good = "journal v1 fp=0000000000000001";
  const std::string path = ::testing::TempDir() + "journal_batch_range.altj";

  ASSERT_TRUE(WriteFile(path, frame(good) + frame("batch spent=42 best=1.5")).ok());
  auto ok = core::LoadTuningJournal(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->batch_lines, 1);
  EXPECT_EQ(ok->last_spent, 42);
  EXPECT_EQ(ok->discarded_bytes, 0);

  ASSERT_TRUE(
      WriteFile(path, frame(good) + frame("batch spent=4294967296 best=1.5")).ok());
  auto overflow = core::LoadTuningJournal(path);
  ASSERT_TRUE(overflow.ok()) << overflow.status().ToString();
  EXPECT_EQ(overflow->batch_lines, 0);
  EXPECT_EQ(overflow->last_spent, 0);
  EXPECT_GT(overflow->discarded_bytes, 0);
  RemoveFile(path);
}

TEST(TuningRecordRobustness, PrimitiveCodecRoundTrips) {
  for (const auto& p : {
           layout::Primitive::Split(1, {4, 8}),
           layout::Primitive::Reorder({0, 2, 1}),
           layout::Primitive::Fuse(0, 2),
           layout::Primitive::Unfold(2, 3, 1),
           layout::Primitive::Pad(1, 0, 3),
           layout::Primitive::StoreAt(7, 1),
       }) {
    std::string text = loop::EncodePrimitive(p);
    auto decoded = loop::DecodePrimitive(text);
    ASSERT_TRUE(decoded.ok()) << text << ": " << decoded.status().ToString();
    EXPECT_EQ(loop::EncodePrimitive(*decoded), text);
  }
}

}  // namespace
}  // namespace alt

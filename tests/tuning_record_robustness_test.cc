// Feeds malformed, truncated, and garbage tuning-record text to the parser
// and asserts it reports Status instead of crashing. Before the checked
// numeric parsing in support/string_util.h, lines like "par=x" or a split
// factor wider than int64 threw from std::stoi/std::stoll and aborted the
// process (the parser is exception-free by design, so nothing caught them).

#include <gtest/gtest.h>

#include "src/core/tuning_record.h"
#include "src/loop/serialization.h"
#include "src/support/string_util.h"

namespace alt {
namespace {

TEST(TuningRecordRobustness, NonNumericScheduleFieldsReturnStatus) {
  for (const char* text : {
           "schedule conv par=x",
           "schedule conv rot=abc",
           "schedule conv s=a,b,c,d",
           "schedule conv r=1,z",
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, OutOfRangeIntegersReturnStatus) {
  for (const char* text : {
           "layout t split:9999999999999999999:2",
           "layout t split:1:99999999999999999999999999",
           "schedule conv par=99999999999999999999",
           "schedule conv s=99999999999999999999999,1,1,1",
           "layout t unfold:0:123456789123456789123456789:1",
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, TruncatedPrimitivesReturnStatus) {
  for (const char* text : {
           "layout t split:1",          // missing factors
           "layout t unfold:1:2",       // unfold needs 4 fields
           "layout t pad:0:1",          // pad needs 4 fields
           "layout t store_at:3",       // store_at needs 3 fields
           "layout t split::",          // empty numeric fields
           "layout t :::",              // empty kind
       }) {
    auto record = core::ParseTuningRecord(text);
    EXPECT_FALSE(record.ok()) << "accepted: " << text;
  }
}

TEST(TuningRecordRobustness, GarbageLinesReturnStatus) {
  EXPECT_FALSE(core::ParseTuningRecord("lay\0out t split:1:2").ok());
  EXPECT_FALSE(core::ParseTuningRecord("schedule").ok());
  EXPECT_FALSE(core::ParseTuningRecord("layout").ok());
  EXPECT_FALSE(core::ParseTuningRecord("\x01\x02\x03 \x04").ok());
}

TEST(TuningRecordRobustness, ValidLinesStillParse) {
  auto record = core::ParseTuningRecord(
      "# comment\n"
      "layout w split:1:4,8 reorder:0,2,1\n"
      "schedule conv s=2,1,7,4;1,1,16,1 r=4,4 par=2 rot=1 unroll=1\n");
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_EQ(record->layouts.size(), 1u);
  EXPECT_EQ(record->layouts[0].second.size(), 2u);
  auto sched = record->schedules.find("conv");
  ASSERT_NE(sched, record->schedules.end());
  ASSERT_EQ(sched->second.spatial.size(), 2u);
  EXPECT_EQ(sched->second.spatial[0].vec, 4);
  EXPECT_EQ(sched->second.parallel_axes, 2);
  EXPECT_TRUE(sched->second.unroll_inner_reduction);
}

TEST(TuningRecordRobustness, CheckedParsersRejectEdgeCases) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
  EXPECT_FALSE(ParseInt64("-99999999999999999999999").ok());
  EXPECT_FALSE(ParseInt32("2147483648").ok());
  EXPECT_FALSE(ParseInt32("-2147483649").ok());
  ASSERT_TRUE(ParseInt64("-42").ok());
  EXPECT_EQ(*ParseInt64("-42"), -42);
  ASSERT_TRUE(ParseInt32("2147483647").ok());
  EXPECT_EQ(*ParseInt32("2147483647"), 2147483647);
}

TEST(TuningRecordRobustness, PrimitiveCodecRoundTrips) {
  for (const auto& p : {
           layout::Primitive::Split(1, {4, 8}),
           layout::Primitive::Reorder({0, 2, 1}),
           layout::Primitive::Fuse(0, 2),
           layout::Primitive::Unfold(2, 3, 1),
           layout::Primitive::Pad(1, 0, 3),
           layout::Primitive::StoreAt(7, 1),
       }) {
    std::string text = loop::EncodePrimitive(p);
    auto decoded = loop::DecodePrimitive(text);
    ASSERT_TRUE(decoded.ok()) << text << ": " << decoded.status().ToString();
    EXPECT_EQ(loop::EncodePrimitive(*decoded), text);
  }
}

}  // namespace
}  // namespace alt

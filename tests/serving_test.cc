// InferenceSession: equivalence with the deprecated free functions,
// repeated-run determinism over reused arenas, and concurrent serving
// (exercised under TSan in CI).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"

namespace alt::runtime {
namespace {

using graph::Graph;
using graph::LayoutAssignment;

Graph SmallWorkload() {
  Graph g("serving_target");
  int x = g.AddInput("x", {1, 4, 10, 10});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {8, 4, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {8});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

// A layouted variant so feeds and output go through real conversion plans.
void AssignSplitLayouts(const Graph& g, LayoutAssignment& la) {
  for (const auto& t : g.tensors()) {
    if (t.shape.size() == 4 && t.shape[1] % 4 == 0) {
      layout::LayoutSeq seq;
      seq.Append(layout::Primitive::Split(1, {t.shape[1] / 4, 4}));
      la.Set(t.id, seq);
    }
  }
}

TensorDataMap MakeRequest(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  TensorDataMap data;
  FillGraphInputs(g, rng, data);
  return data;
}

TEST(InferenceSession, MatchesDeprecatedFreeFunction) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  TensorDataMap data = MakeRequest(g, 11);

  auto via_free = RunLoweredNetwork(g, la, *net, data);
  ASSERT_TRUE(via_free.ok()) << via_free.status().ToString();
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto via_session = session->Run(data);
  ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();
  ASSERT_EQ(via_session->size(), via_free->size());
  EXPECT_EQ(0, std::memcmp(via_session->data(), via_free->data(),
                           via_free->size() * sizeof(float)));
  EXPECT_EQ(session->output_tensor(), net->groups.back().OutputTensor(g));
  EXPECT_EQ(session->output_shape(), g.tensor(session->output_tensor()).shape);
}

TEST(InferenceSession, RepeatedRunsOnReusedArenaAreBitIdentical) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());

  TensorDataMap a = MakeRequest(g, 21);
  TensorDataMap b = MakeRequest(g, 22);
  auto first_a = session->Run(a);
  ASSERT_TRUE(first_a.ok());
  // Interleave a different request so stale arena contents would show up.
  ASSERT_TRUE(session->Run(b).ok());
  auto again_a = session->Run(a);
  ASSERT_TRUE(again_a.ok());
  EXPECT_EQ(0, std::memcmp(first_a->data(), again_a->data(),
                           first_a->size() * sizeof(float)));
  // Sequential calls reuse the single arena instead of growing the pool.
  EXPECT_EQ(session->arena_count(), 1);
}

TEST(InferenceSession, ReportsMissingAndMisSizedInputs) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());

  TensorDataMap data = MakeRequest(g, 31);
  TensorDataMap missing = data;
  missing.erase(missing.begin()->first);
  EXPECT_FALSE(session->Run(missing).ok());
  TensorDataMap missized = data;
  missized.begin()->second.pop_back();
  EXPECT_FALSE(session->Run(missized).ok());
  // The session still serves correct requests afterwards (arena returned).
  EXPECT_TRUE(session->Run(data).ok());
  EXPECT_EQ(session->arena_count(), 1);
}

TEST(InferenceSession, CreateRejectsEmptyNetwork) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  EXPECT_FALSE(InferenceSession::Create(g, la, loop::LoweredNetwork{}).ok());
}

TEST(InferenceSession, ConcurrentRunsAreDeterministic) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 8;
  std::vector<TensorDataMap> requests;
  std::vector<std::vector<float>> expected;
  for (int t = 0; t < kThreads; ++t) {
    requests.push_back(MakeRequest(g, 100 + t));
    auto out = session->Run(requests.back());
    ASSERT_TRUE(out.ok());
    expected.push_back(std::move(*out));
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        auto out = session->Run(requests[t]);
        if (!out.ok() || *out != expected[t]) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  EXPECT_GE(session->arena_count(), 1);
  EXPECT_LE(session->arena_count(), kThreads + 1);
}

TEST(InferenceSession, RunBatchMatchesSequentialRuns) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());

  std::vector<TensorDataMap> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back(MakeRequest(g, 200 + i));
  }
  auto batch = session->RunBatch(requests, 4);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto one = session->Run(requests[i]);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*batch)[i], *one) << "request " << i;
  }
}

TEST(InferenceSession, RunBatchDetailedKeepsGoodResultsOfMixedBatch) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());

  std::vector<TensorDataMap> requests;
  requests.push_back(MakeRequest(g, 300));
  TensorDataMap bad = MakeRequest(g, 301);
  bad.erase(bad.begin()->first);  // malformed: missing feed
  requests.push_back(std::move(bad));
  requests.push_back(MakeRequest(g, 302));

  ThreadPool pool(2);
  auto results = session->RunBatchDetailed(requests, pool);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_FALSE(results[1].ok());  // only the malformed request fails...
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  auto expect_0 = session->Run(requests[0]);
  auto expect_2 = session->Run(requests[2]);
  ASSERT_TRUE(expect_0.ok() && expect_2.ok());
  EXPECT_EQ(*results[0], *expect_0);  // ...and the good outputs survive
  EXPECT_EQ(*results[2], *expect_2);

  // The all-or-nothing wrapper still collapses a mixed batch to its first
  // failure.
  EXPECT_FALSE(session->RunBatch(requests, 2).ok());
}

TEST(InferenceSession, ResolveBatchThreadsClampsZeroHardwareConcurrency) {
  // hardware_concurrency() may legitimately report 0; a ThreadPool(0) must
  // never be constructed from it.
  EXPECT_EQ(ResolveBatchThreads(0, 0), 1);
  EXPECT_EQ(ResolveBatchThreads(-3, 0), 1);
  EXPECT_EQ(ResolveBatchThreads(0, 8), 8);
  EXPECT_EQ(ResolveBatchThreads(3, 0), 3);
  EXPECT_EQ(ResolveBatchThreads(3, 8), 3);
}

TEST(InferenceSession, ArenaPoolIsCappedAndBorrowersBlock) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  AssignSplitLayouts(g, la);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  SessionOptions options;
  options.max_arenas = 1;
  auto session = InferenceSession::Create(g, la, *net, options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->max_arenas(), 1);

  // 4 threads hammer the single-arena session: the cap means borrowers queue
  // (blocking in Run) instead of materializing more arenas, and every run
  // still produces the right bits.
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 6;
  std::vector<TensorDataMap> requests;
  std::vector<std::vector<float>> expected;
  for (int t = 0; t < kThreads; ++t) {
    requests.push_back(MakeRequest(g, 400 + t));
    auto out = session->Run(requests.back());
    ASSERT_TRUE(out.ok());
    expected.push_back(std::move(*out));
  }
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        auto out = session->Run(requests[t]);
        if (!out.ok() || *out != expected[t]) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  EXPECT_EQ(session->arena_count(), 1);  // the cap held under contention
}

TEST(InferenceSession, DefaultArenaCapIsAtLeastTwo) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  auto session = InferenceSession::Create(g, la, *net);
  ASSERT_TRUE(session.ok());
  // Default: 2x hardware threads, floored at 2 even when
  // hardware_concurrency() reports 0.
  EXPECT_GE(session->max_arenas(), 2);
}

TEST(ValidateAgainstReference, AcceptsOptionsStruct) {
  Graph g = SmallWorkload();
  LayoutAssignment la;
  auto diff = ValidateAgainstReference(g, la, {.seed = 5, .enable_fusion = false});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_LT(*diff, 2e-3);
  auto diff_default = ValidateAgainstReference(g, la);
  ASSERT_TRUE(diff_default.ok());
  EXPECT_LT(*diff_default, 2e-3);
}

}  // namespace
}  // namespace alt::runtime

// Native codegen: the emitter's generated kernels, JIT failure handling
// (every failure is a Status — a missing or broken toolchain never aborts
// and never leaves temp files behind), the process-wide kernel cache
// (compile-once semantics, negative caching, rejected garbage objects), and
// the artifact embedding path: save with ExecEngine::kNative, reload in a
// cleared cache, serve with zero recompiles.

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/codegen/cpp_emitter.h"
#include "src/codegen/jit.h"
#include "src/codegen/kernel_cache.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"
#include "src/support/fileio.h"
#include "src/support/metrics.h"

namespace alt {
namespace {

int64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().Snapshot().counter(name);
}

// Restores the cache to the default toolchain (and empty state) however the
// test exits, so a failure in one test cannot poison the rest of the binary.
struct CacheSandbox {
  CacheSandbox() { Reset(); }
  ~CacheSandbox() { Reset(); }
  static void Reset() {
    codegen::KernelCache::Global().SetJitOptionsForTest(codegen::JitOptions());
    codegen::KernelCache::Global().ClearForTest();
  }
};

// Minimal hand-built spec: one unguarded fill leaf writing `extent` elements
// of an immediate from offset 0, stride 1.
codegen::KernelSpec FillSpec(int64_t extent, int64_t out_size, double imm) {
  codegen::KernelSpec spec;
  spec.num_buffers = 1;
  spec.env_size = 1;
  spec.acc_init = {0};
  codegen::KernelSpec::Leaf leaf;
  leaf.extent = extent;
  leaf.vslot = 0;
  leaf.out_buffer = 0;
  leaf.out_size = out_size;
  leaf.store_acc = 0;
  leaf.store_inner = 1;
  leaf.then_k.kind = codegen::KernelSpec::BranchKind::kFill;
  leaf.then_k.imm = imm;
  spec.leaves.push_back(leaf);
  codegen::KernelSpec::Instr instr;
  instr.kind = codegen::KernelSpec::Instr::kLeaf;
  instr.leaf = 0;
  spec.instrs.push_back(instr);
  return spec;
}

bool ToolchainAvailable() {
  static const bool available = [] {
    auto kernel = codegen::CompileAndLoad(codegen::EmitKernelSource(FillSpec(1, 1, 0.0)));
    return kernel.ok();
  }();
  return available;
}

int64_t RunFill(const std::shared_ptr<codegen::NativeKernel>& kernel,
                std::vector<float>& out) {
  float* bufs[] = {out.data()};
  int64_t env[] = {0};
  return kernel->fn()(bufs, env, nullptr, nullptr, 0, 0);
}

graph::Graph SmallWorkload() {
  graph::Graph g("codegen_target");
  int x = g.AddInput("x", {1, 8, 12, 12});
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, x, w, attrs, "conv");
  int b = g.AddConstant("b", {16});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

// Canonical (no-layout) inputs for `g`, duplicated into a fresh store.
runtime::BufferStore SeedInputs(const graph::Graph& g, uint64_t seed) {
  Rng rng(seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  runtime::BufferStore store;
  for (const auto& [id, values] : data) {
    store.Get(id) = values;
  }
  return store;
}

void RunAllPrograms(const loop::LoweredNetwork& net, runtime::BufferStore& store,
                    runtime::ExecEngine engine) {
  runtime::ExecOptions options;
  options.engine = engine;
  for (const auto& program : net.programs) {
    Status s = runtime::Execute(program, store, options);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

// --- emitter + jit ------------------------------------------------------

TEST(CodegenEmitter, GeneratedKernelRunsAndBoundsChecks) {
  if (!ToolchainAvailable()) {
    GTEST_SKIP() << "no host C++ toolchain";
  }
  const std::string source = codegen::EmitKernelSource(FillSpec(4, 4, 2.5));
  EXPECT_NE(source.find(codegen::kKernelSymbol), std::string::npos);
  auto kernel = codegen::CompileAndLoad(source);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

  std::vector<float> out(4, -1.0f);
  EXPECT_EQ(RunFill(*kernel, out), codegen::kOk);
  for (float v : out) {
    EXPECT_EQ(v, 2.5f);
  }

  // A store whose last element lands past the declared buffer size must be
  // refused with the store-bounds code before any element is written.
  auto oob = codegen::CompileAndLoad(codegen::EmitKernelSource(FillSpec(4, 3, 2.5)));
  ASSERT_TRUE(oob.ok()) << oob.status().ToString();
  std::vector<float> small(4, -1.0f);
  EXPECT_EQ(RunFill(*oob, small), codegen::kStoreOutOfBounds);
  EXPECT_EQ(small[0], -1.0f);
}

TEST(CodegenJit, CompilerFailureIsAStatusAndLeavesNoTempFiles) {
  const std::string root = ::testing::TempDir() + "codegen_scratch";
  ASSERT_TRUE(mkdir(root.c_str(), 0755) == 0 || errno == EEXIST);
  codegen::JitOptions options;
  options.compiler = "/bin/false";
  options.temp_root = root;
  auto kernel = codegen::CompileAndLoad(codegen::EmitKernelSource(FillSpec(2, 2, 1.0)), options);
  EXPECT_FALSE(kernel.ok());

  DIR* dir = opendir(root.c_str());
  ASSERT_NE(dir, nullptr);
  int entries = 0;
  while (dirent* e = readdir(dir)) {
    if (std::strcmp(e->d_name, ".") != 0 && std::strcmp(e->d_name, "..") != 0) {
      ++entries;
    }
  }
  closedir(dir);
  EXPECT_EQ(entries, 0) << "failed compile left files under its temp root";
}

TEST(CodegenJit, GarbageObjectBytesAreRejectedWithStatus) {
  const std::vector<unsigned char> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  auto kernel = codegen::LoadObject(garbage);
  EXPECT_FALSE(kernel.ok());

  CacheSandbox sandbox;
  auto& cache = codegen::KernelCache::Global();
  Status s = cache.RegisterObject("0123456789abcdef", garbage);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(cache.Find("0123456789abcdef"), nullptr);
  EXPECT_EQ(cache.size(), 0);
}

// --- kernel cache -------------------------------------------------------

TEST(CodegenCache, SecondPrepareHitsWithoutRecompiling) {
  if (!ToolchainAvailable()) {
    GTEST_SKIP() << "no host C++ toolchain";
  }
  CacheSandbox sandbox;
  graph::Graph g = SmallWorkload();
  graph::LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  const int64_t compiles0 = CounterValue("codegen.compiles");
  const int64_t hits0 = CounterValue("codegen.cache_hits");
  auto first = SeedInputs(g, 11);
  RunAllPrograms(*net, first, runtime::ExecEngine::kNative);
  const int64_t compiled = CounterValue("codegen.compiles") - compiles0;
  EXPECT_GT(compiled, 0);
  EXPECT_EQ(CounterValue("codegen.compile_failures"), 0);

  // Preparing the same programs again must be served entirely from cache.
  auto second = SeedInputs(g, 11);
  RunAllPrograms(*net, second, runtime::ExecEngine::kNative);
  EXPECT_EQ(CounterValue("codegen.compiles") - compiles0, compiled);
  EXPECT_GE(CounterValue("codegen.cache_hits") - hits0, compiled);
}

TEST(CodegenCache, CompileFailureFallsBackBitIdenticallyAndIsNegativeCached) {
  CacheSandbox sandbox;
  codegen::JitOptions broken;
  broken.compiler = "/bin/false";
  codegen::KernelCache::Global().SetJitOptionsForTest(broken);

  graph::Graph g = SmallWorkload();
  graph::LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  const int64_t compiles0 = CounterValue("codegen.compiles");
  const int64_t failures0 = CounterValue("codegen.compile_failures");
  auto generic = SeedInputs(g, 23);
  RunAllPrograms(*net, generic, runtime::ExecEngine::kGeneric);
  auto native = SeedInputs(g, 23);
  RunAllPrograms(*net, native, runtime::ExecEngine::kNative);  // degrades, still ok
  const int64_t attempts = CounterValue("codegen.compiles") - compiles0;
  EXPECT_GT(attempts, 0);
  EXPECT_EQ(CounterValue("codegen.compile_failures") - failures0, attempts);

  for (const auto& t : g.tensors()) {
    const auto* a = generic.Find(t.id);
    const auto* b = native.Find(t.id);
    ASSERT_EQ(a == nullptr, b == nullptr) << t.name;
    if (a != nullptr) {
      ASSERT_EQ(a->size(), b->size()) << t.name;
      EXPECT_EQ(std::memcmp(a->data(), b->data(), a->size() * sizeof(float)), 0)
          << "fallback output differs for " << t.name;
    }
  }

  // The failure is remembered: re-preparing must not shell out again.
  auto again = SeedInputs(g, 23);
  RunAllPrograms(*net, again, runtime::ExecEngine::kNative);
  EXPECT_EQ(CounterValue("codegen.compiles") - compiles0, attempts);
}

// --- artifact embedding -------------------------------------------------

TEST(CodegenArtifact, SaveEmbedsKernelsAndReloadServesWithZeroRecompiles) {
  if (!ToolchainAvailable()) {
    GTEST_SKIP() << "no host C++ toolchain";
  }
  CacheSandbox sandbox;
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  options.engine = runtime::ExecEngine::kNative;
  graph::Graph g = SmallWorkload();
  auto tuned = core::Compile(g, machine, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();

  const std::string path = ::testing::TempDir() + "codegen_artifact.altart";
  ASSERT_TRUE(core::SaveArtifact(*tuned, machine, options, path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("altart v2"), std::string::npos);
  EXPECT_NE(contents->find("kernel "), std::string::npos);

  // Drop the in-process kernels: everything the reload serves natively must
  // come out of the artifact, not out of this process's compile history.
  codegen::KernelCache::Global().ClearForTest();
  const int64_t compiles0 = CounterValue("codegen.compiles");
  const int64_t hits0 = CounterValue("codegen.cache_hits");
  auto loaded = core::LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->info.version, 2);
  EXPECT_GT(loaded->info.kernels, 0);

  runtime::SessionOptions session_options;
  session_options.exec.engine = runtime::ExecEngine::kNative;
  auto session = runtime::InferenceSession::Create(
      loaded->network.graph, loaded->network.assignment,
      {loaded->network.groups, loaded->network.programs}, session_options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Rng rng(99);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(loaded->network.graph, rng, data);
  auto served = session->Run(data);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EXPECT_EQ(CounterValue("codegen.compiles"), compiles0) << "reload recompiled a kernel";
  EXPECT_GT(CounterValue("codegen.cache_hits"), hits0);

  // Same request through the default engine: the embedded kernels are
  // bit-identical, not merely close.
  auto reference_session = runtime::InferenceSession::Create(
      loaded->network.graph, loaded->network.assignment,
      {loaded->network.groups, loaded->network.programs});
  ASSERT_TRUE(reference_session.ok());
  auto reference = reference_session->Run(data);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(served->size(), reference->size());
  EXPECT_EQ(std::memcmp(served->data(), reference->data(), served->size() * sizeof(float)), 0);
}

}  // namespace
}  // namespace alt

// Tests for crash-isolated out-of-process measurement: the frame protocol,
// bit-identity between the isolated and in-process paths, and the worker
// failure matrix — kill -9, hangs, garbled frames — ending with a full tuning
// run that loses a worker mid-measurement and still produces the same network
// as an undisturbed run.

#include <gtest/gtest.h>

#include <unistd.h>

#include <set>
#include <string>
#include <vector>

#include "src/autotune/measure.h"
#include "src/autotune/tuner.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/loop/serialization.h"
#include "src/support/crc32.h"
#include "src/support/subprocess.h"

namespace alt {
namespace {

graph::Graph SmallConvGraph() {
  graph::Graph g("worker_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

loop::FusedGroup ComplexGroup(const graph::Graph& g,
                              const std::vector<loop::FusedGroup>& groups) {
  for (const auto& grp : groups) {
    if (graph::IsComplex(g.op(grp.anchor_op).kind)) {
      return grp;
    }
  }
  return groups.front();
}

struct Candidate {
  graph::Graph g;
  graph::LayoutAssignment la;
  loop::FusedGroup group;
  std::vector<loop::LoopSchedule> scheds;
};

Candidate MakeCandidates(int n, uint64_t seed) {
  Candidate c{SmallConvGraph(), {}, {}, {}};
  auto groups = loop::PartitionGraph(c.g, c.la, true);
  c.group = ComplexGroup(c.g, groups);
  auto sig = loop::GroupSignature(c.g, c.la, c.group);
  EXPECT_TRUE(sig.ok());
  auto space = autotune::LoopSpace::ForSignature(*sig, sim::Machine::IntelCpu(), false);
  Rng rng(seed);
  std::set<std::string> unique;
  while (static_cast<int>(c.scheds.size()) < n) {
    auto s = space.Decode(autotune::RandomPoint(space.num_knobs(), rng));
    if (unique.insert(loop::EncodeSchedule(s)).second) {
      c.scheds.push_back(s);
    }
  }
  return c;
}

// The site fingerprint the engine derives for one candidate, so tests can aim
// fault hooks at a specific schedule.
uint64_t SiteOf(const Candidate& c, const loop::LoopSchedule& sched) {
  return Fnv1a64(autotune::GroupCacheKey(c.g, c.la, c.group) + "#" +
                 loop::EncodeSchedule(sched));
}

TEST(Subprocess, FrameRoundTripAndCorruptionDetection) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "r 3 0 123.456 789";
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  std::string back;
  ASSERT_EQ(ReadFrame(fds[0], &back, 1000), FrameReadResult::kOk);
  EXPECT_EQ(back, payload);

  // A single flipped payload bit must trip the CRC, not parse as data.
  std::string frame = EncodeFrame(payload);
  frame.back() ^= 0x5a;
  ASSERT_TRUE(WriteAll(fds[1], frame).ok());
  EXPECT_EQ(ReadFrame(fds[0], &back, 1000), FrameReadResult::kCorrupt);

  // A torn frame (header promises more than arrives before EOF) is corrupt,
  // never a clean EOF; a true EOF on a frame boundary is clean.
  frame = EncodeFrame(payload);
  ASSERT_TRUE(WriteAll(fds[1], frame.substr(0, frame.size() - 3)).ok());
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0], &back, 1000), FrameReadResult::kCorrupt);
  EXPECT_EQ(ReadFrame(fds[0], &back, 1000), FrameReadResult::kEof);
  ::close(fds[0]);
}

TEST(Subprocess, ReadFrameHonorsDeadline) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  EXPECT_EQ(ReadFrame(fds[0], &payload, 50), FrameReadResult::kTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerPool, IsolatedMatchesInProcessBitForBit) {
  Candidate c = MakeCandidates(12, 17);
  const auto& machine = sim::Machine::IntelCpu();

  autotune::MeasureEngineConfig in_proc;
  in_proc.threads = 2;
  autotune::MeasureEngine inproc_engine(machine, in_proc);
  auto expected = inproc_engine.Measure(c.g, c.la, c.group, c.scheds);

  autotune::MeasureEngineConfig iso;
  iso.isolate.enabled = true;
  iso.isolate.workers = 3;
  autotune::MeasureEngine iso_engine(machine, iso);
  auto got = iso_engine.Measure(c.g, c.la, c.group, c.scheds);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status.ok(), expected[i].status.ok());
    EXPECT_EQ(got[i].latency_us, expected[i].latency_us) << "slot " << i;
    EXPECT_EQ(got[i].attempts, expected[i].attempts);
  }
  EXPECT_EQ(iso_engine.stats().measured, inproc_engine.stats().measured);
  EXPECT_EQ(iso_engine.stats().worker_restarts, 0);
}

TEST(WorkerPool, InjectedFaultsMatchInProcessAccounting) {
  // The parent consults the FaultInjector before dispatching, so (site,
  // attempt) fates — and therefore retries/attempts/failures — must be
  // identical to the in-process path.
  Candidate c = MakeCandidates(8, 23);
  const auto& machine = sim::Machine::IntelCpu();

  autotune::MeasureEngineConfig in_proc;
  in_proc.faults.failure_rate = 0.4;
  in_proc.faults.seed = 5;
  in_proc.retry.max_attempts = 3;
  in_proc.retry.backoff_base_ms = 0;
  autotune::MeasureEngine inproc_engine(machine, in_proc);
  auto expected = inproc_engine.Measure(c.g, c.la, c.group, c.scheds);

  autotune::MeasureEngineConfig iso = in_proc;
  iso.isolate.enabled = true;
  iso.isolate.workers = 2;
  autotune::MeasureEngine iso_engine(machine, iso);
  auto got = iso_engine.Measure(c.g, c.la, c.group, c.scheds);

  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status.ok(), expected[i].status.ok()) << "slot " << i;
    EXPECT_EQ(got[i].latency_us, expected[i].latency_us);
    EXPECT_EQ(got[i].attempts, expected[i].attempts);
  }
  EXPECT_EQ(iso_engine.stats().retries, inproc_engine.stats().retries);
  EXPECT_EQ(iso_engine.stats().injected_failures, inproc_engine.stats().injected_failures);
  EXPECT_EQ(iso_engine.stats().failed, inproc_engine.stats().failed);
}

TEST(WorkerPool, CrashedWorkerIsRespawnedAndCandidateRetries) {
  Candidate c = MakeCandidates(6, 41);
  const auto& machine = sim::Machine::IntelCpu();
  const uint64_t victim = SiteOf(c, c.scheds[2]);

  autotune::MeasureEngineConfig config;
  config.isolate.enabled = true;
  config.isolate.workers = 2;
  config.isolate.faults.crash_site = victim;
  config.isolate.faults.crash_attempts = 1;  // kill -9 on the first attempt only
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 0;
  autotune::MeasureEngine engine(machine, config);

  auto results = engine.Measure(c.g, c.la, c.group, c.scheds);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok()) << "slot " << i << ": "
                                        << results[i].status.ToString();
  }
  EXPECT_EQ(results[2].attempts, 2);  // crashed once, succeeded on retry
  EXPECT_GE(engine.stats().worker_restarts, 1);
  EXPECT_EQ(engine.stats().measured, 6);
  EXPECT_EQ(engine.stats().failed, 0);

  // The crash must not have poisoned the recovered value: it matches a
  // fault-free engine bit-for-bit.
  autotune::MeasureEngineConfig clean_config;
  autotune::MeasureEngine clean(machine, clean_config);
  auto reference = clean.MeasureOne(c.g, c.la, c.group, c.scheds[2]);
  EXPECT_EQ(results[2].latency_us, reference.latency_us);
}

TEST(WorkerPool, PersistentlyCrashingCandidateIsQuarantined) {
  Candidate c = MakeCandidates(4, 43);
  const auto& machine = sim::Machine::IntelCpu();
  const uint64_t victim = SiteOf(c, c.scheds[0]);

  autotune::MeasureEngineConfig config;
  config.isolate.enabled = true;
  config.isolate.workers = 2;
  config.isolate.faults.crash_site = victim;
  config.isolate.faults.crash_attempts = 0;  // every attempt crashes
  config.retry.max_attempts = 2;
  config.retry.backoff_base_ms = 0;
  autotune::MeasureEngine engine(machine, config);

  auto results = engine.Measure(c.g, c.la, c.group, c.scheds);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].attempts, 2);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok()) << "slot " << i;
  }
  EXPECT_GE(engine.stats().worker_restarts, 2);
  EXPECT_EQ(engine.stats().quarantined, 1);
  EXPECT_EQ(engine.quarantine_size(), 1);

  // Re-requesting the offender short-circuits in quarantine: no fresh
  // attempt, no worker churn.
  const int64_t restarts_before = engine.stats().worker_restarts;
  auto again = engine.MeasureOne(c.g, c.la, c.group, c.scheds[0]);
  EXPECT_FALSE(again.status.ok());
  EXPECT_EQ(again.attempts, 0);
  EXPECT_EQ(engine.stats().worker_restarts, restarts_before);
}

TEST(WorkerPool, HungWorkerIsKilledByWatchdog) {
  Candidate c = MakeCandidates(4, 47);
  const auto& machine = sim::Machine::IntelCpu();
  const uint64_t victim = SiteOf(c, c.scheds[1]);

  autotune::MeasureEngineConfig config;
  config.isolate.enabled = true;
  config.isolate.workers = 2;
  config.isolate.deadline_ms = 200;  // watchdog fires fast
  config.isolate.faults.hang_site = victim;
  config.isolate.faults.hang_attempts = 1;  // hangs once, then behaves
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 0;
  autotune::MeasureEngine engine(machine, config);

  auto results = engine.Measure(c.g, c.la, c.group, c.scheds);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok()) << "slot " << i << ": "
                                        << results[i].status.ToString();
  }
  EXPECT_EQ(results[1].attempts, 2);  // timed out once, succeeded on retry
  EXPECT_GE(engine.stats().worker_restarts, 1);
}

TEST(WorkerPool, GarbledReplyIsCaughtByCrcAndRetried) {
  Candidate c = MakeCandidates(4, 53);
  const auto& machine = sim::Machine::IntelCpu();
  const uint64_t victim = SiteOf(c, c.scheds[3]);

  autotune::MeasureEngineConfig config;
  config.isolate.enabled = true;
  config.isolate.workers = 2;
  config.isolate.faults.garble_site = victim;
  config.isolate.faults.garble_attempts = 1;  // corrupts its reply once
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 0;
  autotune::MeasureEngine engine(machine, config);

  auto results = engine.Measure(c.g, c.la, c.group, c.scheds);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok()) << "slot " << i;
  }
  EXPECT_EQ(results[3].attempts, 2);
  EXPECT_GE(engine.stats().worker_restarts, 1);

  // The corrupted frame never became a latency: the retried value matches a
  // fault-free engine.
  autotune::MeasureEngineConfig clean_config;
  autotune::MeasureEngine clean(machine, clean_config);
  auto reference = clean.MeasureOne(c.g, c.la, c.group, c.scheds[3]);
  EXPECT_EQ(results[3].latency_us, reference.latency_us);
}

TEST(WorkerPool, FullTunerSurvivesWorkerKillMidMeasurement) {
  // The acceptance scenario: a full tuning run whose workers get kill -9'd
  // mid-measurement (first attempt of EVERY candidate crashes) must stay
  // alive, restart workers, and land on the SAME network as an undisturbed
  // run — crash recovery is invisible in the result.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions base;
  base.budget = 120;
  base.method = autotune::SearchMethod::kRandom;
  base.seed = 7;
  base.fault.retry.max_attempts = 3;
  base.fault.retry.backoff_base_ms = 0;

  core::AltOptions faultfree = base;
  faultfree.measure.isolate = true;
  faultfree.measure.workers = 2;
  auto clean = core::Compile(g, machine, faultfree);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  core::AltOptions crashy = base;
  crashy.measure.isolate = true;
  crashy.measure.workers = 2;
  crashy.fault.worker.crash_site = autotune::kAnyMeasureSite;
  crashy.fault.worker.crash_attempts = 1;  // first attempt of every site dies
  auto survived = core::Compile(g, machine, crashy);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();

  EXPECT_EQ(survived->perf.latency_us, clean->perf.latency_us);
  EXPECT_EQ(survived->measurements_used, clean->measurements_used);
  ASSERT_EQ(survived->schedules.size(), clean->schedules.size());
  for (size_t i = 0; i < clean->schedules.size(); ++i) {
    EXPECT_EQ(loop::EncodeSchedule(survived->schedules[i]),
              loop::EncodeSchedule(clean->schedules[i]));
  }
  EXPECT_GT(survived->measure_stats.worker_restarts, 0);
  EXPECT_EQ(clean->measure_stats.worker_restarts, 0);
}

}  // namespace
}  // namespace alt

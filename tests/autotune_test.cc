// Tests for the auto-tuning stack: GBT cost model, PPO agent, search spaces,
// and the joint tuner (including the headline property that joint layout +
// loop tuning beats loop-only tuning).

#include <cmath>

#include <gtest/gtest.h>

#include "src/autotune/gbt.h"
#include "src/autotune/ppo.h"
#include "src/autotune/space.h"
#include "src/autotune/tuner.h"
#include "src/baselines/baselines.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/runtime/session.h"
#include "src/support/fileio.h"
#include "src/support/trace.h"

namespace alt {
namespace {

using autotune::Point;

TEST(Gbt, FitsSimpleFunction) {
  // y = 3*x0 + noise-free step on x1.
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(3.0 * a + (b > 0.5 ? 1.0 : 0.0));
  }
  autotune::GradientBoostedTrees gbt;
  gbt.Fit(x, y);
  double err = 0.0;
  for (int i = 0; i < 200; ++i) {
    err += std::abs(gbt.Predict(x[i]) - y[i]);
  }
  EXPECT_LT(err / 200, 0.15);
}

TEST(Gbt, RanksMonotoneData) {
  // The cost model's job is ranking; check order preservation.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(static_cast<double>(i) * 2.0);
  }
  autotune::GradientBoostedTrees gbt;
  gbt.Fit(x, y);
  EXPECT_LT(gbt.Predict({10.0}), gbt.Predict({80.0}));
}

TEST(Ppo, LearnsBanditTarget) {
  // Reward peaks when action[0] is near 0.8: the agent should move there.
  Rng rng(11);
  autotune::PpoOptions options;
  options.batch_before_update = 8;
  options.action_dim = 2;
  options.log_std = -1.2;  // low noise so the mean shift dominates the reward
  autotune::PpoAgent agent(options, rng);
  double early = 0.0;
  double late = 0.0;
  const int steps = 600;
  for (int i = 0; i < steps; ++i) {
    auto a = agent.Act({});
    double reward = -std::abs(a[0] - 0.8);
    agent.Reward(reward);
    if (i < 100) {
      early += reward;
    }
    if (i >= steps - 100) {
      late += reward;
    }
  }
  EXPECT_GT(late / 100, early / 100 + 0.02);
}

TEST(LayoutSpaceTest, DecodeProducesValidTemplates) {
  graph::ConvConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 32;
  cfg.spatial[0] = cfg.spatial[1] = 24;
  cfg.kernel[0] = cfg.kernel[1] = 3;
  cfg.pad = 0;
  graph::Graph g = graph::BuildSingleConv(graph::OpKind::kConv2d, cfg);
  auto space = autotune::LayoutSpace::ForOp(g, 0, false);
  ASSERT_TRUE(space.ok());
  EXPECT_GE(space->num_knobs(), 6);  // paper: six tunable parameters for C2D
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Point p = autotune::RandomPoint(space->num_knobs(), rng);
    auto decoded = space->Decode(g, p);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    // Shapes must transform cleanly.
    std::vector<int64_t> shape = g.tensor(g.op(0).output).shape;
    EXPECT_TRUE(decoded->output.ApplyToShape(shape).ok());
  }
}

TEST(LayoutSpaceTest, GmmSpaceSmallerThanConv) {
  graph::Graph gm = graph::BuildSingleMatmul(64, 64, 64);
  auto gmm_space = autotune::LayoutSpace::ForOp(gm, 0, false);
  ASSERT_TRUE(gmm_space.ok());
  EXPECT_EQ(gmm_space->num_knobs(), 3);  // mt, kt, nt as in §5.1
}

TEST(LoopSpaceTest, DecodeAlwaysValid) {
  loop::LoopNestSignature sig;
  sig.spatial_extents = {2, 36, 24, 64};
  sig.reduction_extents = {16, 3, 3};
  auto space = autotune::LoopSpace::ForSignature(sig, sim::Machine::IntelCpu());
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    Point p = autotune::RandomPoint(space.num_knobs(), rng);
    loop::LoopSchedule s = space.Decode(p);
    ASSERT_EQ(s.spatial.size(), 4u);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(s.spatial[j].outer * s.spatial[j].mid * s.spatial[j].inner * s.spatial[j].vec,
                sig.spatial_extents[j]);
    }
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(s.reduction[r].outer * s.reduction[r].inner, sig.reduction_extents[r]);
    }
  }
}

TEST(LoopSpaceTest, RestrictedSpaceIsSmaller) {
  loop::LoopNestSignature sig;
  sig.spatial_extents = {4, 32, 32, 32};
  sig.reduction_extents = {64};
  auto full = autotune::LoopSpace::ForSignature(sig, sim::Machine::IntelCpu(), false);
  auto restricted = autotune::LoopSpace::ForSignature(sig, sim::Machine::IntelCpu(), true);
  EXPECT_LT(restricted.NumPoints(), full.NumPoints());
}

// ---------------------------------------------------------------------------
// Joint tuner end-to-end.
// ---------------------------------------------------------------------------

graph::Graph SmallConvGraph() {
  graph::Graph g("tune_target");
  int x = g.AddInput("x", {1, 16, 28, 28});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {32});
  int biased = g.AddBiasAdd(c, b, 1, "bias");
  g.AddRelu(biased, "relu");
  return g;
}

TEST(JointTuner, TunedBeatsDefaultSchedules) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  auto vendor = baselines::RunBaseline(baselines::BaselineKind::kVendor, g, machine, 0);
  ASSERT_TRUE(vendor.ok()) << vendor.status().ToString();

  core::AltOptions options;
  options.budget = 200;
  options.method = autotune::SearchMethod::kRandom;  // deterministic-ish, fast
  auto tuned = core::Compile(g, machine, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();

  EXPECT_LT(tuned->perf.latency_us, vendor->perf.latency_us * 1.05);
  EXPECT_GT(tuned->measurements_used, 50);
}

TEST(JointTuner, JointBeatsLoopOnly) {
  // The headline claim: joint layout+loop tuning finds faster programs than
  // loop-only tuning with the same budget.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions full;
  full.budget = 240;
  full.method = autotune::SearchMethod::kRandom;
  full.seed = 3;
  auto alt = core::Compile(g, machine, full);
  ASSERT_TRUE(alt.ok());

  core::AltOptions ol = full;
  ol.variant = core::AltVariant::kLoopOnly;
  auto alt_ol = core::Compile(g, machine, ol);
  ASSERT_TRUE(alt_ol.ok());

  EXPECT_LE(alt->perf.latency_us, alt_ol->perf.latency_us * 1.10);
}

TEST(JointTuner, HistoryIsSentinelFreeAndMonotoneNonIncreasing) {
  graph::Graph g = SmallConvGraph();
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  auto result = core::Compile(g, sim::Machine::ArmCpu(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->history_us.empty());
  for (size_t i = 0; i < result->history_us.size(); ++i) {
    // The curve starts at the first successful measurement: every entry is a
    // real latency, never the tuner's internal "no best yet" sentinel.
    EXPECT_LT(result->history_us[i], 1e29) << "sentinel leaked at " << i;
    EXPECT_GT(result->history_us[i], 0.0);
    if (i > 0) {
      EXPECT_LE(result->history_us[i], result->history_us[i - 1]);
    }
  }
}

// Records everything the tuner announces through the event-sink interface.
struct RecordingSink : autotune::TuningEventSink {
  std::vector<std::string> phases;
  std::vector<double> batch_bests;
  void OnMeasured(const std::string&, const autotune::MeasureResult&) override {}
  void OnLayoutCommitted(int, const autotune::DecodedLayouts&,
                         const loop::LoopSchedule*) override {}
  void OnBatchDone(int, double best_us) override { batch_bests.push_back(best_us); }
  void OnPhase(const std::string& phase) override { phases.push_back(phase); }
};

TEST(JointTuner, SinkSeesOrderedPhasesAndNoSentinel) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;

  RecordingSink sink;
  autotune::TuningOptions tuning = core::ToTuningOptions(options, machine);
  tuning.event_sink = &sink;
  autotune::JointTuner tuner(g, machine, tuning);
  auto result = tuner.Tune();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(sink.phases, (std::vector<std::string>{"joint", "loop", "lower"}));
  ASSERT_FALSE(sink.batch_bests.empty());
  for (double best : sink.batch_bests) {
    // "No result yet" is NaN; anything else is a real latency. The 1e30
    // internal sentinel must never cross the sink interface.
    if (!std::isnan(best)) {
      EXPECT_LT(best, 1e29);
      EXPECT_GT(best, 0.0);
    }
  }
}

TEST(JointTuner, AllFailingMeasurementsReportNaNNeverSentinel) {
  // Every measurement attempt fails, so a best latency never exists: the
  // tuning curve must stay empty and every batch report NaN — the pre-fix
  // behavior pushed 1e30 into both.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options;
  options.budget = 60;
  options.method = autotune::SearchMethod::kRandom;
  options.fault.injection.always_fail_first = 1000;  // beyond any retry count
  options.fault.retry.max_attempts = 1;

  RecordingSink sink;
  autotune::TuningOptions tuning = core::ToTuningOptions(options, machine);
  tuning.event_sink = &sink;
  autotune::JointTuner tuner(g, machine, tuning);
  auto result = tuner.Tune();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->history_us.empty());
  ASSERT_FALSE(sink.batch_bests.empty());
  for (double best : sink.batch_bests) {
    EXPECT_TRUE(std::isnan(best)) << "reported " << best << " with no successful measurement";
  }
}

TEST(JointTuner, TracedRunWritesChromeTraceAndMatchingMetrics) {
  graph::Graph g = SmallConvGraph();
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  const std::string trace_path = ::testing::TempDir() + "tuner_trace_test.json";
  RemoveFile(trace_path);
  options.trace.path = trace_path;

  auto result = core::Compile(g, sim::Machine::IntelCpu(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto trace = ReadFile(trace_path);
  ASSERT_TRUE(trace.ok()) << "trace file missing: " << trace.status().ToString();
  EXPECT_NE(trace->find("\"traceEvents\""), std::string::npos);
  for (const char* span : {"tuner.tune", "tuner.joint_stage", "tuner.loop_stage",
                           "measure.batch", "measure.candidate"}) {
    EXPECT_NE(trace->find(std::string("\"") + span + "\""), std::string::npos)
        << "trace is missing span " << span;
  }
  RemoveFile(trace_path);

  // The per-run metrics snapshot rides on the result and agrees with the
  // engine's counters.
  EXPECT_EQ(result->metrics.counter("measure.requested"), result->measure_stats.requested);
  EXPECT_EQ(result->metrics.counter("measure.measured"), result->measure_stats.measured);
  EXPECT_GT(result->metrics.counter("sim.estimate_program_calls"), 0);
  EXPECT_GT(result->metrics.counter("tuner.loop_batches"), 0);

  // The recorder is session-scoped: a later untraced compile records nothing.
  core::AltOptions untraced = options;
  untraced.trace.path.clear();
  auto again = core::Compile(g, sim::Machine::IntelCpu(), untraced);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(TraceRecorder::Global().enabled());
}

TEST(JointTuner, BudgetIsRespected) {
  graph::Graph g = SmallConvGraph();
  core::AltOptions options;
  options.budget = 100;
  options.method = autotune::SearchMethod::kRandom;
  auto result = core::Compile(g, sim::Machine::IntelCpu(), options);
  ASSERT_TRUE(result.ok());
  // Default-schedule seeding adds one measurement per group beyond the knob
  // budget; allow modest slack only.
  EXPECT_LE(result->measurements_used, options.budget + 24);
}

TEST(JointTuner, TunedNetworkStaysNumericallyCorrect) {
  graph::Graph g = SmallConvGraph();
  core::AltOptions options;
  options.budget = 80;
  options.method = autotune::SearchMethod::kRandom;
  auto result = core::Compile(g, sim::Machine::IntelCpu(), options);
  ASSERT_TRUE(result.ok());

  // Execute the tuned programs and compare against the reference on the
  // TUNED graph (which may contain conversion ops).
  Rng rng(21);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(result->graph, rng, data);
  loop::LoweredNetwork net;
  net.groups = result->groups;
  net.programs = result->programs;
  auto out = runtime::RunLoweredNetwork(result->graph, result->assignment, net, data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(runtime::ExecuteReference(result->graph, data).ok());
  int out_id = net.groups.back().OutputTensor(result->graph);
  EXPECT_LT(runtime::MaxAbsDiff(*out, data[out_id]), 2e-3);
}

TEST(Baselines, AllRunOnGmm) {
  graph::Graph g = graph::BuildSingleMatmul(64, 128, 64);
  const auto& machine = sim::Machine::NvidiaGpu();
  for (auto kind : {baselines::BaselineKind::kVendor, baselines::BaselineKind::kAutoTvm,
                    baselines::BaselineKind::kFlexTensor, baselines::BaselineKind::kAnsor}) {
    auto result = baselines::RunBaseline(kind, g, machine, 60, 2);
    ASSERT_TRUE(result.ok()) << baselines::BaselineName(kind) << ": "
                             << result.status().ToString();
    EXPECT_GT(result->perf.latency_us, 0.0);
  }
}

TEST(Pretraining, SnapshotRoundTrips) {
  auto snapshot = autotune::PretrainLayoutAgent(sim::Machine::ArmCpu(), 7, 24);
  EXPECT_FALSE(snapshot.empty());
  Rng rng(1);
  autotune::PpoAgent agent(autotune::PpoOptions{}, rng);
  agent.Restore(snapshot);
  EXPECT_EQ(agent.Snapshot().size(), snapshot.size());
}

}  // namespace
}  // namespace alt

// Artifact save/load: round-trip bit-identity, corruption rejection,
// version and graph-signature gates.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/runtime/session.h"
#include "src/support/crc32.h"
#include "src/support/fileio.h"
#include "src/support/string_util.h"

namespace alt::core {
namespace {

graph::Graph SmallWorkload() {
  graph::Graph g("artifact_target");
  int x = g.AddInput("x", {1, 8, 12, 12});
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, x, w, attrs, "conv");
  int b = g.AddConstant("b", {16});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

StatusOr<autotune::CompiledNetwork> TuneSmall(const sim::Machine& machine,
                                              AltOptions* options_out = nullptr) {
  AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  if (options_out != nullptr) {
    *options_out = options;
  }
  return Compile(SmallWorkload(), machine, options);
}

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

TEST(Artifact, RoundTripIsBitIdentical) {
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();

  const std::string path = TempPath("artifact_roundtrip.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, path).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Provenance survives.
  EXPECT_EQ(loaded->info.version, 1);
  EXPECT_EQ(loaded->info.machine, machine.name);
  EXPECT_EQ(loaded->info.seed, options.seed);
  EXPECT_EQ(loaded->info.budget, options.budget);
  EXPECT_EQ(loaded->info.variant, options.variant);
  EXPECT_EQ(loaded->info.method, options.method);
  EXPECT_EQ(loaded->info.measurements_used, tuned->measurements_used);
  EXPECT_EQ(loaded->info.graph_signature, GraphSignature(tuned->graph));
  if (!tuned->history_us.empty()) {
    EXPECT_EQ(loaded->info.best_latency_us, tuned->history_us.back());
  }
  // Re-lowering reproduces the structure and the perf estimate.
  ASSERT_EQ(loaded->network.programs.size(), tuned->programs.size());
  EXPECT_EQ(loaded->network.perf.latency_us, tuned->perf.latency_us);

  // The loaded network, served through an InferenceSession, is bit-identical
  // to running the in-process tuned network.
  Rng rng(99);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(tuned->graph, rng, data);
  auto in_process = runtime::RunLoweredNetwork(tuned->graph, tuned->assignment,
                                               {tuned->groups, tuned->programs}, data);
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  auto session = runtime::InferenceSession::Create(
      loaded->network.graph, loaded->network.assignment,
      {loaded->network.groups, loaded->network.programs});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto served = session->Run(data);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served->size(), in_process->size());
  EXPECT_EQ(0, std::memcmp(served->data(), in_process->data(),
                           served->size() * sizeof(float)));
}

TEST(Artifact, SaveIsDeterministic) {
  const auto& machine = sim::Machine::ArmCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok());
  const std::string a = TempPath("artifact_det_a.altart");
  const std::string b = TempPath("artifact_det_b.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, a).ok());
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, b).ok());
  auto ca = ReadFile(a);
  auto cb = ReadFile(b);
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_EQ(*ca, *cb);
}

// Every truncation point and every flipped byte must yield a Status — never
// an abort, never a partially-loaded network.
TEST(Artifact, CorruptionCorpusIsRejectedWithStatus) {
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok());
  const std::string path = TempPath("artifact_corrupt.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  const std::string& good = *contents;
  const std::string mutated = TempPath("artifact_mutated.altart");

  // Truncations: cut at every 41st byte (and the exact last byte) to cover
  // torn lines, missing trailers, and empty files.
  for (size_t cut = 0; cut < good.size(); cut += 41) {
    ASSERT_TRUE(WriteFile(mutated, std::string_view(good).substr(0, cut)).ok());
    auto loaded = LoadArtifact(mutated);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut << " byte(s) was accepted";
  }

  // Bit flips: flip one bit every 37 bytes across the whole file. Flipping a
  // newline can merge two framed lines; everything must still be rejected.
  for (size_t pos = 0; pos < good.size(); pos += 37) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    ASSERT_TRUE(WriteFile(mutated, bad).ok());
    auto loaded = LoadArtifact(mutated);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " was accepted";
  }

  // Dropping a whole (validly framed) line is caught by the trailer count.
  size_t first_nl = good.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  size_t second_nl = good.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  std::string dropped = good.substr(0, first_nl + 1) + good.substr(second_nl + 1);
  ASSERT_TRUE(WriteFile(mutated, dropped).ok());
  EXPECT_FALSE(LoadArtifact(mutated).ok());

  // The pristine file still loads.
  EXPECT_TRUE(LoadArtifact(path).ok());
}

TEST(Artifact, RejectsUnknownVersion) {
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok());
  const std::string path = TempPath("artifact_version.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());

  // Forge a v3 header WITH a valid CRC frame: only the version gate can
  // reject it. (v2 is the kernel-embedding format and loads fine.)
  std::vector<std::string> lines = Split(*contents, '\n');
  ASSERT_FALSE(lines.empty());
  std::string payload;
  ASSERT_TRUE(UnframeLine(lines[0], &payload));
  ASSERT_EQ(payload.rfind("altart v1 ", 0), 0u);
  payload.replace(0, 9, "altart v3");
  lines[0] = FrameLine(payload);
  ASSERT_TRUE(WriteFile(path, Join(lines, "\n")).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
}

TEST(Artifact, RejectsGraphSignatureMismatch) {
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok());
  const std::string path = TempPath("artifact_gsig.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, machine, options, path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());

  // Rename a tensor with a correctly re-framed line: every CRC passes, the
  // graph even rebuilds — only the signature check can catch the edit.
  std::vector<std::string> lines = Split(*contents, '\n');
  bool edited = false;
  for (auto& line : lines) {
    std::string payload;
    if (!UnframeLine(line, &payload)) {
      continue;
    }
    size_t name_pos = payload.rfind(" name=");
    if (payload.rfind("tensor ", 0) == 0 && name_pos != std::string::npos) {
      payload = payload.substr(0, name_pos) + " name=forged";
      line = FrameLine(payload);
      edited = true;
      break;
    }
  }
  ASSERT_TRUE(edited);
  ASSERT_TRUE(WriteFile(path, Join(lines, "\n")).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("signature"), std::string::npos)
      << loaded.status().ToString();
}

TEST(Artifact, UnknownMachineNameSkipsPerfEstimate) {
  const auto& machine = sim::Machine::IntelCpu();
  AltOptions options;
  auto tuned = TuneSmall(machine, &options);
  ASSERT_TRUE(tuned.ok());
  sim::Machine future = machine;
  future.name = "quantum-tpu-v9";
  const std::string path = TempPath("artifact_unknown_machine.altart");
  ASSERT_TRUE(SaveArtifact(*tuned, future, options, path).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->info.machine, "quantum-tpu-v9");
  EXPECT_EQ(loaded->network.perf.latency_us, 0.0);  // not estimated, not aborted
}

TEST(Artifact, LoadOfMissingFileIsAnError) {
  EXPECT_FALSE(LoadArtifact(TempPath("no_such_artifact.altart")).ok());
}

}  // namespace
}  // namespace alt::core

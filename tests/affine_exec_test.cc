// Affine execution engine coverage: unit tests for the decomposition and
// guard-range rules (ir/affine.h), a randomized differential corpus proving
// the fast path and the generic fallback produce bit-identical buffers across
// layout-primitive + schedule combinations, zero-init-skip semantics, and the
// structure-keyed analysis cache of the measurement engine.

#include <cstring>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/autotune/layout_templates.h"
#include "src/autotune/measure.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/ir/affine.h"
#include "src/ir/eval.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"
#include "src/support/metrics.h"

namespace alt {
namespace {

using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;
using ir::AffineAnalyzer;
using ir::AffineLoop;

// ---------------------------------------------------------------------------
// Affine decomposition.
// ---------------------------------------------------------------------------

TEST(AffineDecompose, LinearForm) {
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  AffineAnalyzer az({{i->var_id, 4}, {j->var_id, 7}});
  auto f = az.Decompose(ir::Add(ir::Add(ir::Mul(i, 3), j), ir::Const(5)));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->base, 5);
  ASSERT_EQ(f->coeffs.size(), 2u);
  EXPECT_EQ(f->coeffs[0], 3);
  EXPECT_EQ(f->coeffs[1], 1);
}

TEST(AffineDecompose, SplitFuseRoundtrip) {
  // The split/fuse pattern layout lowering produces: (4i + j) with j in
  // [0, 4) must divide and mod back to exactly i and j.
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  AffineAnalyzer az({{i->var_id, 6}, {j->var_id, 4}});
  ir::Expr fused = ir::Add(ir::Mul(i, 4), j);
  auto div = az.Decompose(ir::FloorDiv(fused, 4));
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->base, 0);
  EXPECT_EQ(div->coeffs[0], 1);
  EXPECT_EQ(div->coeffs[1], 0);
  auto mod = az.Decompose(ir::Mod(fused, 4));
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->base, 0);
  EXPECT_EQ(mod->coeffs[0], 0);
  EXPECT_EQ(mod->coeffs[1], 1);
}

TEST(AffineDecompose, ModWithOffsetStaysExactWhenRangeFits) {
  ir::Expr i = ir::MakeVar("i");
  AffineAnalyzer az({{i->var_id, 4}});
  // (i + 2) mod 8 == i + 2 for i in [0, 4).
  auto f = az.Decompose(ir::Mod(ir::Add(i, 2), 8));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->base, 2);
  EXPECT_EQ(f->coeffs[0], 1);
}

TEST(AffineDecompose, NonDivisibleResidueIsRejected) {
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  AffineAnalyzer az({{i->var_id, 4}, {j->var_id, 2}});
  // (3i + j) / 4 takes quotients 0, 1 and 2 over the domain: not affine.
  EXPECT_FALSE(az.Decompose(ir::FloorDiv(ir::Add(ir::Mul(i, 3), j), 4)).has_value());
}

TEST(AffineDecompose, MinMaxResolveByDifferenceRange) {
  ir::Expr i = ir::MakeVar("i");
  AffineAnalyzer az({{i->var_id, 4}});
  // i <= 7 over the whole domain -> min picks i; max picks the constant.
  auto mn = az.Decompose(ir::Min(i, ir::Const(7)));
  ASSERT_TRUE(mn.has_value());
  EXPECT_EQ(mn->coeffs[0], 1);
  auto mx = az.Decompose(ir::Max(i, ir::Const(7)));
  ASSERT_TRUE(mx.has_value());
  EXPECT_EQ(mx->coeffs[0], 0);
  EXPECT_EQ(mx->base, 7);
  // i crosses 2 inside the domain: unresolvable.
  EXPECT_FALSE(az.Decompose(ir::Min(i, ir::Const(2))).has_value());
}

TEST(AffineDecompose, UnknownVarIsNonAffine) {
  ir::Expr i = ir::MakeVar("i");
  ir::Expr stray = ir::MakeVar("stray");
  AffineAnalyzer az({{i->var_id, 4}});
  EXPECT_FALSE(az.Decompose(ir::Add(i, stray)).has_value());
}

// Every successful decomposition must agree with bytecode evaluation at every
// point of the iteration domain — the exactness contract the engines rely on.
TEST(AffineDecompose, ExactOverTheWholeDomain) {
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  const int64_t ei = 6, ej = 8;
  AffineAnalyzer az({{i->var_id, ei}, {j->var_id, ej}});
  std::vector<ir::Expr> exprs = {
      ir::Add(ir::Mul(i, 9), ir::Mul(j, 2)),
      ir::FloorDiv(ir::Add(ir::Mul(i, 8), j), 8),
      ir::Mod(ir::Add(ir::Mul(i, 8), j), 8),
      ir::Mod(ir::Add(ir::Mul(i, 16), ir::Add(ir::Mul(j, 2), 1)), 16),
      ir::Min(ir::Add(i, j), ir::Const(13)),
      ir::Max(ir::Sub(i, 5), ir::Const(-5)),
      ir::Sub(ir::Mul(j, 3), ir::Mul(i, 2)),
  };
  ir::VarSlotMap slots;
  int si = slots.AddVar(i->var_id);
  int sj = slots.AddVar(j->var_id);
  for (const auto& e : exprs) {
    auto form = az.Decompose(e);
    ASSERT_TRUE(form.has_value()) << ir::ToString(e);
    auto compiled = ir::CompiledExpr::Compile(e, slots);
    ASSERT_TRUE(compiled.ok());
    std::vector<int64_t> env(slots.size(), 0);
    for (int64_t vi = 0; vi < ei; ++vi) {
      for (int64_t vj = 0; vj < ej; ++vj) {
        env[si] = vi;
        env[sj] = vj;
        int64_t expected = compiled->Eval(env.data());
        int64_t got = form->base + form->coeffs[0] * vi + form->coeffs[1] * vj;
        ASSERT_EQ(got, expected) << ir::ToString(e) << " at i=" << vi << " j=" << vj;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Guard-range splitting.
// ---------------------------------------------------------------------------

// Brute-force oracle for the guard predicate.
bool GuardHolds(int64_t e, int64_t lo, int64_t hi, int64_t modulus, int64_t rem) {
  if (e < lo || e >= hi) {
    return false;
  }
  if (modulus > 1) {
    int64_t m = e % modulus;
    if (m < 0) {
      m += modulus;
    }
    return m == rem;
  }
  return true;
}

void CheckGuardRange(int64_t c0, int64_t cv, int64_t lo, int64_t hi, int64_t modulus,
                     int64_t rem, int64_t extent) {
  auto r = ir::GuardRange(c0, cv, lo, hi, modulus, rem, extent);
  ASSERT_TRUE(r.has_value());
  for (int64_t v = 0; v < extent; ++v) {
    bool expected = GuardHolds(c0 + cv * v, lo, hi, modulus, rem);
    bool got = v >= r->first && v < r->second;
    ASSERT_EQ(got, expected) << "c0=" << c0 << " cv=" << cv << " v=" << v;
  }
}

TEST(GuardRange, PositiveAndNegativeCoefficients) {
  CheckGuardRange(-2, 1, 0, 8, 1, 0, 10);  // pad-style prefix/suffix trim
  CheckGuardRange(5, -1, 0, 4, 1, 0, 10);  // decreasing guard expression
  CheckGuardRange(0, 3, 2, 11, 1, 0, 10);  // stride-3 walk through an interval
  CheckGuardRange(-7, 2, 0, 4, 1, 0, 10);
}

TEST(GuardRange, ConstantGuard) {
  CheckGuardRange(3, 0, 0, 8, 1, 0, 5);   // always true -> full range
  CheckGuardRange(9, 0, 0, 8, 1, 0, 5);   // always false -> empty
  CheckGuardRange(4, 0, 0, 8, 2, 0, 5);   // modulus satisfied
  CheckGuardRange(3, 0, 0, 8, 2, 0, 5);   // modulus violated -> empty
}

TEST(GuardRange, ModulusAlignedCoefficient) {
  // cv divisible by the modulus: residue constant along v, range splittable.
  CheckGuardRange(4, 2, 0, 20, 2, 0, 12);
  CheckGuardRange(3, 2, 0, 20, 2, 0, 12);  // residue 1 != 0 -> empty
  CheckGuardRange(6, 4, 0, 30, 2, 0, 8);
}

TEST(GuardRange, PeriodicSubsetIsRejected) {
  // cv % modulus != 0 selects every other iteration: not contiguous.
  EXPECT_FALSE(ir::GuardRange(0, 1, 0, 100, 2, 0, 10).has_value());
  EXPECT_FALSE(ir::GuardRange(5, 3, 0, 100, 2, 1, 10).has_value());
}

TEST(GuardRange, ClampsToTheIterationDomain) {
  auto r = ir::GuardRange(0, 1, -100, 100, 1, 0, 6);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0);
  EXPECT_EQ(r->second, 6);
}

// ---------------------------------------------------------------------------
// Differential corpus: affine engine vs generic fallback, bit-identical.
// ---------------------------------------------------------------------------

// Executes every program of `net` under all three engines — and the affine
// and native engines additionally at intra-op thread counts 2 and 8 — on
// identical physical inputs and requires every buffer to match bit for bit.
// The serial affine run is the reference; thread counts above the root
// extent and programs whose kParallel root fails the disjointness proof
// (degrading to serial) must be equally invariant.
void ExpectEnginesBitIdentical(const Graph& g, const LayoutAssignment& la,
                               const loop::LoweredNetwork& net, uint64_t seed,
                               const std::string& tag) {
  Rng rng(seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  struct EngineRun {
    std::string name;
    runtime::ExecOptions options;
    runtime::BufferStore store;
  };
  std::vector<EngineRun> runs;
  auto add = [&runs](const std::string& name, runtime::ExecEngine engine, int intra) {
    runs.emplace_back();
    runs.back().name = name;
    runs.back().options.engine = engine;
    runs.back().options.intra_threads = intra;
  };
  add("affine", runtime::ExecEngine::kAffine, 1);  // runs[0]: the reference
  add("generic", runtime::ExecEngine::kGeneric, 1);
  add("native", runtime::ExecEngine::kNative, 1);
  for (int t : {2, 8}) {
    add("affine@" + std::to_string(t), runtime::ExecEngine::kAffine, t);
    add("native@" + std::to_string(t), runtime::ExecEngine::kNative, t);
  }
  for (const auto& t : g.tensors()) {
    if (!g.IsGraphInput(t.id) && !g.IsConstant(t.id)) {
      continue;
    }
    auto it = data.find(t.id);
    ASSERT_NE(it, data.end()) << tag;
    auto phys = runtime::Physicalize(it->second, t.shape, la.Get(t.id));
    ASSERT_TRUE(phys.ok()) << tag << ": " << phys.status().ToString();
    for (EngineRun& r : runs) {
      r.store.Get(t.id) = *phys;
    }
  }
  for (const auto& program : net.programs) {
    Status ref = runtime::Execute(program, runs[0].store, runs[0].options);
    for (size_t ri = 1; ri < runs.size(); ++ri) {
      Status s = runtime::Execute(program, runs[ri].store, runs[ri].options);
      ASSERT_EQ(ref.ok(), s.ok()) << tag << " affine=" << ref.ToString() << " "
                                  << runs[ri].name << "=" << s.ToString();
    }
    ASSERT_TRUE(ref.ok()) << tag << ": " << ref.ToString();
    for (const auto& decl : program.buffers) {
      const auto* a = runs[0].store.Find(decl.tensor.id);
      ASSERT_NE(a, nullptr) << tag;
      for (size_t ri = 1; ri < runs.size(); ++ri) {
        const auto* b = runs[ri].store.Find(decl.tensor.id);
        ASSERT_NE(b, nullptr) << tag;
        ASSERT_EQ(a->size(), b->size()) << tag << " tensor " << decl.tensor.name;
        ASSERT_EQ(std::memcmp(a->data(), b->data(), a->size() * sizeof(float)), 0)
            << tag << " tensor " << decl.tensor.name << " differs (affine vs "
            << runs[ri].name << ")";
      }
    }
  }
}

std::vector<int64_t> RandomFactors(int64_t n, int parts, std::mt19937_64& rng) {
  std::vector<int64_t> f(static_cast<size_t>(parts), 1);
  for (int p = 0; p + 1 < parts; ++p) {
    std::vector<int64_t> divs;
    for (int64_t d = 1; d <= n; ++d) {
      if (n % d == 0) {
        divs.push_back(d);
      }
    }
    f[p] = divs[rng() % divs.size()];
    n /= f[p];
  }
  f[static_cast<size_t>(parts) - 1] = n;
  return f;
}

loop::LoopSchedule RandomSchedule(const std::vector<int64_t>& spatial,
                                  const std::vector<int64_t>& reduction,
                                  std::mt19937_64& rng) {
  loop::LoopSchedule s;
  for (int64_t e : spatial) {
    auto f = RandomFactors(e, 4, rng);
    loop::SpatialAxisSchedule a;
    a.outer = f[0];
    a.mid = f[1];
    a.inner = f[2];
    a.vec = f[3];
    s.spatial.push_back(a);
  }
  for (int64_t e : reduction) {
    auto f = RandomFactors(e, 2, rng);
    s.reduction.push_back({f[0], f[1]});
  }
  s.parallel_axes = static_cast<int>(rng() % 3);
  s.inner_order_rotation =
      spatial.empty() ? 0 : static_cast<int>(rng() % spatial.size());
  s.unroll_inner_reduction = (rng() % 2) == 0;
  return s;
}

// Lowers the network, scheduling the (single) complex group randomly and the
// rest naively, then runs the differential check.
void DifferentialConvCase(Graph& g, const LayoutAssignment& la, std::mt19937_64& rng,
                          const std::string& tag) {
  auto groups = loop::PartitionGraph(g, la, true);
  loop::LoweredNetwork net;
  net.groups = groups;
  for (const auto& group : groups) {
    if (graph::IsComplex(g.op(group.anchor_op).kind)) {
      auto sig = loop::GroupSignature(g, la, group);
      ASSERT_TRUE(sig.ok()) << tag << ": " << sig.status().ToString();
      auto sched = RandomSchedule(sig->spatial_extents, sig->reduction_extents, rng);
      auto prog = loop::LowerGroup(g, la, group, sched);
      ASSERT_TRUE(prog.ok()) << tag << ": " << prog.status().ToString();
      net.programs.push_back(std::move(*prog));
    } else {
      auto prog = loop::LowerGroupNaive(g, la, group);
      ASSERT_TRUE(prog.ok()) << tag << ": " << prog.status().ToString();
      net.programs.push_back(std::move(*prog));
    }
  }
  ExpectEnginesBitIdentical(g, la, net, /*seed=*/rng(), tag);
}

class AffineDifferentialConv : public ::testing::TestWithParam<int> {};

TEST_P(AffineDifferentialConv, LayoutAndScheduleCorpus) {
  const int which = GetParam();
  std::mt19937_64 rng(1234u + static_cast<uint64_t>(which) * 77u);
  for (int round = 0; round < 3; ++round) {
    Graph g("affine_diff");
    int x = g.AddInput("x", {1, 4, 10, 10});
    graph::PadAttrs padattrs;
    padattrs.before = {0, 0, 1, 1};
    padattrs.after = {0, 0, 1, 1};
    int p = g.AddPad(x, padattrs, "pad");
    int w = g.AddConstant("w", {8, 4, 3, 3});
    graph::ConvAttrs attrs;
    int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
    int b = g.AddConstant("b", {8});
    int biased = g.AddBiasAdd(c, b, 1, "bias");
    g.AddRelu(biased, "relu");
    const graph::Op& conv = g.op(g.ProducerOf(c));

    LayoutAssignment la;
    switch (which) {
      case 0:
        break;  // canonical
      case 1: {
        la.Set(c, autotune::ChannelsLast(2));
        la.Set(p, autotune::ChannelsLast(2));
        graph::PropagateOutputLayout(g, la, c);
        break;
      }
      case 2: {
        auto blocked_out = autotune::BlockedChannels(g.tensor(c).shape, 4);
        ASSERT_TRUE(blocked_out.ok());
        la.Set(c, *blocked_out);
        auto blocked_in = autotune::BlockedChannels(g.tensor(p).shape, 2);
        ASSERT_TRUE(blocked_in.ok());
        la.Set(p, *blocked_in);
        graph::PropagateOutputLayout(g, la, c);
        break;
      }
      case 3: {  // full ALT template: pad guards + unfolded input
        autotune::ConvLayoutParams params;
        params.spatial_tiles = {5, 5};
        params.out_tile = 4;
        params.in_tile = 2;
        params.w_in_tile = 2;
        params.w_out_tile = 4;
        auto layouts = autotune::MakeConvTemplates(g, conv, params);
        ASSERT_TRUE(layouts.ok()) << layouts.status().ToString();
        la.Set(c, layouts->output);
        la.Set(p, layouts->input);
        la.Set(w, layouts->weight);
        graph::PropagateOutputLayout(g, la, c);
        break;
      }
    }
    DifferentialConvCase(g, la, rng,
                         "conv layout " + std::to_string(which) + " round " +
                             std::to_string(round));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, AffineDifferentialConv, ::testing::Range(0, 4));

TEST(AffineDifferential, GmmLayoutsAndSchedules) {
  std::mt19937_64 rng(99);
  for (int which = 0; which < 3; ++which) {
    Graph g = graph::BuildSingleMatmul(16, 24, 32);
    const graph::Op& op = g.op(0);
    LayoutAssignment la;
    if (which == 1) {
      la.Set(op.inputs[1], autotune::TransposedB());
    } else if (which == 2) {
      autotune::GmmLayoutParams params{4, 8, 6};
      auto layouts = autotune::MakeGmmTemplates(g, op, params);
      ASSERT_TRUE(layouts.ok());
      la.Set(op.output, layouts->c);
      la.Set(op.inputs[0], layouts->a);
      la.Set(op.inputs[1], layouts->b);
    }
    DifferentialConvCase(g, la, rng, "gmm case " + std::to_string(which));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(AffineDifferential, TransposedConvModulusGuards) {
  graph::ConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.spatial[0] = cfg.spatial[1] = 5;
  cfg.kernel[0] = cfg.kernel[1] = 3;
  cfg.stride = 2;
  cfg.pad = 1;
  Graph g = graph::BuildSingleConv(OpKind::kTransposedConv2d, cfg);
  LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  ExpectEnginesBitIdentical(g, la, *net, 5, "transposed conv");
}

// Reshape delinearization chains and row-op blocks exercise the non-affine
// bytecode fallback and singleton-store leaves.
TEST(AffineDifferential, NonAffineFallbackNetwork) {
  Graph g("misc");
  int x = g.AddInput("x", {2, 4, 10, 10});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  graph::PoolAttrs mp;
  mp.window[0] = mp.window[1] = 3;
  mp.stride[0] = mp.stride[1] = 2;
  int pooled = g.AddMaxPool2d(p, mp, "maxpool");
  graph::PoolAttrs gap;
  gap.global = true;
  int pooled2 = g.AddAvgPool2d(pooled, gap, "gap");
  int flat = g.AddReshape(pooled2, {2, 4}, "flatten");
  int soft = g.AddSoftmax(flat, "softmax");
  g.AddLayerNorm(soft, "ln");
  LayoutAssignment la;
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  ExpectEnginesBitIdentical(g, la, *net, 21, "misc network");
}

// ---------------------------------------------------------------------------
// Intra-op sharding: disjointness proof, parallel dispatch, serial degrade.
// ---------------------------------------------------------------------------

// out[i][j] = in[i][j] * 2 under a kParallel root i: every iteration writes
// its own row, so the disjointness proof holds and the root shards.
ir::Program DisjointParallelProgram(int64_t rows, int64_t cols) {
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {rows, cols};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {rows, cols};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  ir::Stmt body = ir::MakeFor(
      j, cols, ir::ForKind::kSerial,
      ir::MakeStore(1, {i, j}, ir::VMul(ir::Load(0, {i, j}), ir::Imm(2.0)),
                    ir::StoreMode::kAssign));
  program.root = ir::MakeFor(i, rows, ir::ForKind::kParallel, std::move(body));
  return program;
}

// out[j] += in[i][j] with the kParallel loop as the REDUCTION axis: every
// root iteration writes the same `cols` elements, so the proof must fail and
// execution must degrade to serial (still correct, just not parallel).
ir::Program ParallelReductionProgram(int64_t rows, int64_t cols) {
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {rows, cols};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {cols};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  ir::Expr j = ir::MakeVar("j");
  ir::Stmt body = ir::MakeFor(j, cols, ir::ForKind::kSerial,
                              ir::MakeStore(1, {j}, ir::Load(0, {i, j}),
                                            ir::StoreMode::kAccumulate));
  program.root = ir::MakeFor(i, rows, ir::ForKind::kParallel, std::move(body));
  return program;
}

TEST(ParallelRootWritesDisjoint, ProvesRowDisjointStores) {
  EXPECT_TRUE(ir::ParallelRootWritesDisjoint(DisjointParallelProgram(4, 8)));
}

TEST(ParallelRootWritesDisjoint, RejectsParallelReduction) {
  EXPECT_FALSE(ir::ParallelRootWritesDisjoint(ParallelReductionProgram(4, 8)));
}

void FillParallelInput(runtime::BufferStore& store, int64_t n) {
  auto& in = store.Get(0);
  in.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    in[static_cast<size_t>(i)] = static_cast<float>(i % 17) * 0.25f - 1.0f;
  }
}

TEST(IntraOpSharding, DisjointParallelRootShards) {
  ir::Program program = DisjointParallelProgram(4, 8);
  runtime::BufferStore serial_store;
  runtime::BufferStore sharded_store;
  FillParallelInput(serial_store, 32);
  FillParallelInput(sharded_store, 32);
  runtime::ExecOptions serial;
  serial.intra_threads = 1;
  runtime::ExecOptions sharded;
  sharded.intra_threads = 8;  // above the root extent: clamped to 4 shards
  ASSERT_TRUE(runtime::Execute(program, serial_store, serial).ok());
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(runtime::Execute(program, sharded_store, sharded).ok());
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.counter("interp.parallel_programs") -
                before.counter("interp.parallel_programs"),
            1);
  EXPECT_EQ(std::memcmp(serial_store.Get(1).data(), sharded_store.Get(1).data(),
                        32 * sizeof(float)),
            0);
}

TEST(IntraOpSharding, ParallelReductionDegradesToSerial) {
  ir::Program program = ParallelReductionProgram(4, 8);
  runtime::BufferStore serial_store;
  runtime::BufferStore degraded_store;
  FillParallelInput(serial_store, 32);
  FillParallelInput(degraded_store, 32);
  runtime::ExecOptions serial;
  serial.intra_threads = 1;
  runtime::ExecOptions wants_parallel;
  wants_parallel.intra_threads = 8;
  ASSERT_TRUE(runtime::Execute(program, serial_store, serial).ok());
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(runtime::Execute(program, degraded_store, wants_parallel).ok());
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.counter("interp.parallel_degraded") -
                before.counter("interp.parallel_degraded"),
            1);
  EXPECT_EQ(after.counter("interp.parallel_programs") -
                before.counter("interp.parallel_programs"),
            0);
  EXPECT_EQ(std::memcmp(serial_store.Get(1).data(), degraded_store.Get(1).data(),
                        8 * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Zero-init-skip semantics.
// ---------------------------------------------------------------------------

ir::Program CopyProgram(int64_t n, ir::StoreMode mode) {
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {n};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {n};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  program.root = ir::MakeFor(i, n, ir::ForKind::kSerial,
                             ir::MakeStore(1, {i}, ir::Load(0, {i}), mode));
  return program;
}

TEST(ZeroInitSkip, AssignFirstOverwritesStaleBuffer) {
  ir::Program program = CopyProgram(16, ir::StoreMode::kAssign);
  runtime::BufferStore fresh;
  runtime::BufferStore stale;
  std::vector<float> input(16);
  for (int i = 0; i < 16; ++i) {
    input[i] = static_cast<float>(i) * 0.5f;
  }
  fresh.Get(0) = input;
  stale.Get(0) = input;
  stale.Get(1).assign(16, -123.0f);  // garbage that must be overwritten
  ASSERT_TRUE(runtime::Execute(program, fresh).ok());
  ASSERT_TRUE(runtime::Execute(program, stale).ok());
  EXPECT_EQ(std::memcmp(fresh.Get(1).data(), stale.Get(1).data(), 16 * sizeof(float)), 0);
}

TEST(ZeroInitSkip, AccumulateOutputsAreRezeroedEachRun) {
  ir::Program program = CopyProgram(8, ir::StoreMode::kAccumulate);
  runtime::BufferStore store;
  store.Get(0) = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(runtime::Execute(program, store).ok());
  std::vector<float> first = store.Get(1);
  ASSERT_TRUE(runtime::Execute(program, store).ok());
  // A reduction output relies on the zero-fill: a second run must not double.
  EXPECT_EQ(std::memcmp(first.data(), store.Get(1).data(), 8 * sizeof(float)), 0);
  EXPECT_EQ(store.Get(1)[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Structure-keyed analysis cache in the measurement engine.
// ---------------------------------------------------------------------------

TEST(AnalysisCache, HitsOnStructurallyIdenticalPrograms) {
  Graph g = graph::BuildSingleMatmul(12, 16, 20);
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_EQ(groups.size(), 1u);
  auto sig = loop::GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->spatial_extents.size(), 2u);
  ASSERT_EQ(sig->reduction_extents.size(), 1u);
  const int64_t e0 = sig->spatial_extents[0];
  const int64_t e1 = sig->spatial_extents[1];
  const int64_t er = sig->reduction_extents[0];

  auto mk = [](int64_t o, int64_t m, int64_t i, int64_t v) {
    loop::SpatialAxisSchedule a;
    a.outer = o;
    a.mid = m;
    a.inner = i;
    a.vec = v;
    return a;
  };
  loop::LoopSchedule s1;
  s1.spatial = {mk(e0, 1, 1, 1), mk(1, e1, 1, 1)};
  s1.reduction = {{er, 1}};

  // With the measurement cache off, the same schedule submitted twice is
  // lowered twice (two fresh measurements) — but the second lowered program
  // is structurally identical to the first, so the analysis cache answers it
  // without a second EstimateProgram run.
  const sim::Machine machine = sim::Machine::IntelCpu();
  autotune::MeasureEngineConfig config;
  config.threads = 1;  // sequential: the second candidate must see the first
  config.cache_enabled = false;
  autotune::MeasureEngine engine(machine, config);
  auto results = engine.Measure(g, la, groups[0], {s1, s1});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  ASSERT_TRUE(results[1].status.ok()) << results[1].status.ToString();
  EXPECT_FALSE(results[1].cache_hit);  // both were fresh measurements...
  EXPECT_EQ(results[0].latency_us, results[1].latency_us);  // ...same analysis
  EXPECT_EQ(engine.stats().analysis_cache_hits, 1);
  EXPECT_EQ(engine.stats().measured, 2);
  EXPECT_EQ(engine.analysis_cache_size(), 1);

  // The cache can be disabled; latencies are unchanged.
  autotune::MeasureEngineConfig off;
  off.threads = 1;
  off.cache_enabled = false;
  off.analysis_cache = false;
  autotune::MeasureEngine engine_off(machine, off);
  auto results_off = engine_off.Measure(g, la, groups[0], {s1, s1});
  ASSERT_TRUE(results_off[0].status.ok());
  EXPECT_EQ(results_off[0].latency_us, results[0].latency_us);
  EXPECT_EQ(results_off[1].latency_us, results[1].latency_us);
  EXPECT_EQ(engine_off.stats().analysis_cache_hits, 0);
  EXPECT_EQ(engine_off.analysis_cache_size(), 0);
}

}  // namespace
}  // namespace alt

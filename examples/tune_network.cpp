// End-to-end network tuning: compile ResNet-18 with ALT and its ablations,
// report per-variant latency, and inspect where conversion operators were
// inserted and which groups fused.
//
//   ./build/examples/example_tune_network

#include <cstdio>

#include "src/core/alt.h"
#include "src/graph/networks.h"

int main() {
  using namespace alt;
  graph::Graph g = graph::BuildResNet18(1);
  const auto& machine = sim::Machine::IntelCpu();
  std::printf("network: %s (%zu ops, %zu complex) on %s\n\n", g.name().c_str(),
              g.ops().size(), g.ComplexOps().size(), machine.name.c_str());

  const int kBudget = 400;
  for (auto variant : {core::AltVariant::kLoopOnly, core::AltVariant::kWithoutPropagation,
                       core::AltVariant::kFull}) {
    core::AltOptions options;
    options.budget = kBudget;
    options.variant = variant;
    auto compiled = core::Compile(g, machine, options);
    if (!compiled.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::VariantName(variant),
                   compiled.status().ToString().c_str());
      continue;
    }
    int conversions = 0;
    int fused_ops = 0;
    for (const auto& group : compiled->groups) {
      if (compiled->graph.op(group.anchor_op).kind == graph::OpKind::kLayoutConvert) {
        ++conversions;
      }
      fused_ops += static_cast<int>(group.fused_ops.size());
    }
    std::printf("%-8s latency %9.2f ms | groups %3zu | fused elementwise ops %3d | "
                "conversion ops %d\n",
                core::VariantName(variant), compiled->perf.latency_us / 1e3,
                compiled->groups.size(), fused_ops, conversions);
  }
  std::printf("\nALT should fuse the most (propagation aligns loop nests, Fig. 7) and\n"
              "be the fastest; ALT-WP loses fusion opportunities (Fig. 6).\n");
  return 0;
}

// Joint layout + loop auto-tuning of a single convolution (the paper's §2
// motivating experiment): let ALT search the joint space and show the layout
// it discovers, then compare against loop-only tuning on fixed layouts.
//
//   ./build/examples/example_tune_conv2d

#include <cstdio>

#include "src/core/alt.h"
#include "src/graph/networks.h"

int main() {
  using namespace alt;

  // The first convolution of ResNet-18: pad(224->230) -> 7x7/s2, O=64.
  graph::Graph g = graph::BuildResNetFirstLayer(1);
  const auto& machine = sim::Machine::IntelCpu();

  std::printf("workload: %s on %s\n\n", g.name().c_str(), machine.name.c_str());

  // Loop-only tuning on the fixed NHWO layout (what Ansor-style systems do).
  core::AltOptions loop_only;
  loop_only.budget = 300;
  loop_only.variant = core::AltVariant::kLoopOnly;
  auto ol = core::Compile(g, machine, loop_only);
  if (!ol.ok()) {
    std::fprintf(stderr, "loop-only failed: %s\n", ol.status().ToString().c_str());
    return 1;
  }
  std::printf("loop-only (NHWO fixed): %8.1f us\n", ol->perf.latency_us);

  // Full joint tuning.
  core::AltOptions joint;
  joint.budget = 300;
  auto alt = core::Compile(g, machine, joint);
  if (!alt.ok()) {
    std::fprintf(stderr, "joint failed: %s\n", alt.status().ToString().c_str());
    return 1;
  }
  std::printf("joint layout + loop:    %8.1f us  (%.2fx)\n\n", alt->perf.latency_us,
              ol->perf.latency_us / alt->perf.latency_us);

  // Show what the tuner picked.
  for (const auto& group : alt->groups) {
    int out = group.OutputTensor(alt->graph);
    const auto& seq = alt->assignment.Get(out);
    std::printf("%-12s -> %s\n", alt->graph.op(group.anchor_op).name.c_str(),
                seq.empty() ? "canonical" : seq.ToString().c_str());
  }
  std::printf("\nmeasurements used: %d, tuning-curve points: %zu\n",
              alt->measurements_used, alt->history_us.size());
  return 0;
}

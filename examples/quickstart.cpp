// Quickstart: build a small convolution graph, transform its layouts by hand
// with ALT's primitive functions, lower it, execute it on the interpreter,
// validate against the reference, and estimate its cost on a machine profile.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "src/autotune/layout_templates.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"
#include "src/sim/perf_model.h"

int main() {
  using namespace alt;

  // 1. A computational graph: pad -> conv2d -> bias -> relu.
  graph::Graph g("quickstart");
  int x = g.AddInput("data", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int padded = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("weight", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int conv = g.AddConv(graph::OpKind::kConv2d, padded, w, attrs, "conv");
  int b = g.AddConstant("bias", {32});
  int biased = g.AddBiasAdd(conv, b, 1, "bias_add");
  g.AddRelu(biased, "relu");
  std::printf("%s\n", g.ToString().c_str());

  // 2. Assign layouts with primitive functions: the motivating §2 layout
  //    N H/ht W/wt O/ot ht wt ot with an overlap-unfolded input.
  const graph::Op& conv_op = g.op(g.ProducerOf(conv));
  autotune::ConvLayoutParams params;
  params.spatial_tiles = {7, 7};  // ht = wt = 7 (two tiles per spatial dim)
  params.out_tile = 8;
  params.in_tile = 4;
  params.w_in_tile = 4;
  params.w_out_tile = 8;
  auto layouts = autotune::MakeConvTemplates(g, conv_op, params);
  if (!layouts.ok()) {
    std::fprintf(stderr, "template failed: %s\n", layouts.status().ToString().c_str());
    return 1;
  }
  std::printf("output layout: %s\n", layouts->output.ToString().c_str());
  std::printf("input  layout: %s\n", layouts->input.ToString().c_str());
  std::printf("weight layout: %s\n\n", layouts->weight.ToString().c_str());

  graph::LayoutAssignment la;
  la.Set(conv, layouts->output);
  la.Set(w, layouts->weight);
  // The padding op is re-lowered to WRITE the unfolded layout directly
  // (Fig. 5b): no conversion operator needed.
  auto sat = graph::RequestInputLayout(g, la, conv_op.id, 0, layouts->input);
  std::printf("input layout satisfied by: %s\n",
              sat == graph::InputSatisfaction::kProducerWrites ? "producer re-lowering"
                                                               : "conversion op");
  // Propagate the output layout so bias/relu fuse into the conv loop nest.
  auto prop = graph::PropagateOutputLayout(g, la, conv);
  std::printf("layout propagated to %zu elementwise consumers\n\n",
              prop.forward_assigned.size());

  // 3. Lower and print the conv group's program.
  auto net = loop::LowerNetworkNaive(g, la, /*enable_fusion=*/true);
  if (!net.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n", net.status().ToString().c_str());
    return 1;
  }
  for (const auto& program : net->programs) {
    if (program.name == "conv") {
      std::printf("%s\n", ir::ToString(program).c_str());
    }
  }

  // 4. Execute on the interpreter and compare against the reference.
  Rng rng(1);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  auto out = runtime::RunLoweredNetwork(g, la, *net, data);
  if (!out.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  if (!runtime::ExecuteReference(g, data).ok()) {
    return 1;
  }
  int out_id = net->groups.back().OutputTensor(g);
  std::printf("max |lowered - reference| = %.2e\n",
              runtime::MaxAbsDiff(*out, data[out_id]));

  // 5. Estimate performance on a machine profile.
  auto perf = sim::EstimatePrograms(net->programs, sim::Machine::IntelCpu());
  std::printf("estimated latency on intel-cpu: %.1f us (%.0f flops, %.0f L1 misses)\n",
              perf.latency_us, perf.flops, perf.l1_misses);
  return 0;
}

// Layout playground: every layout primitive (basic and advanced) applied to
// small tensors, with before/after shapes, access-expression rewrites, and
// round trips through the inverse sequences — a tour of paper §4.1.
//
//   ./build/examples/example_layout_playground

#include <cstdio>

#include "src/ir/expr.h"
#include "src/layout/primitive.h"
#include "src/layout/relation.h"
#include "src/runtime/reference.h"

namespace {

using namespace alt;
using layout::LayoutSeq;
using layout::Primitive;

void Show(const char* title, const std::vector<int64_t>& shape, const LayoutSeq& seq) {
  std::printf("--- %s ---\n", title);
  std::printf("primitives: %s\n", seq.ToString().c_str());
  auto rel = layout::LayoutRelation::FromSeq(seq, shape);
  if (!rel.ok()) {
    std::printf("  (inapplicable)\n");
    return;
  }
  std::printf("shape: %s -> %s\n", ir::ShapeToString(shape).c_str(),
              ir::ShapeToString(rel->ApplyToShape()).c_str());
  std::printf("relation: %s (fingerprint %016llx)\n", rel->ToString().c_str(),
              static_cast<unsigned long long>(rel->Fingerprint()));

  // Access rewrite of fresh canonical indices.
  std::vector<ir::Expr> vars;
  for (size_t d = 0; d < shape.size(); ++d) {
    vars.push_back(ir::MakeVar("i" + std::to_string(d)));
  }
  auto mapped = rel->MapRead(vars);
  if (mapped.ok()) {
    std::printf("access T[");
    for (size_t d = 0; d < vars.size(); ++d) {
      std::printf("%s%s", d ? "][" : "", vars[d]->var_name.c_str());
    }
    std::printf("] -> T'");
    for (const auto& e : *mapped) {
      std::printf("[%s]", ir::ToString(e).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("ALT layout primitives (paper Table 1 + §4.1.2)\n\n");

  {
    LayoutSeq seq;
    seq.Append(Primitive::Split(1, {4, 8}));
    Show("split: NOHW -> N (O/8) 8 H W", {1, 32, 14, 14}, seq);
  }
  {
    LayoutSeq seq;
    seq.Append(Primitive::Split(1, {4, 8}));
    seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
    Show("split + reorder: NOHW -> N O/8 H W 8 (blocked NCHWc)", {1, 32, 14, 14}, seq);
  }
  {
    LayoutSeq seq;
    seq.Append(Primitive::Fuse(1, 3));
    seq.Append(Primitive::Split(1, {8, 4, 196}));
    seq.Append(Primitive::Reorder({0, 1, 3, 2}));
    Show("the paper's §4.1.1 walk-through (fuse, split, reorder)", {1, 14, 14, 32}, seq);
  }
  {
    LayoutSeq seq;
    seq.Append(Primitive::Unfold(0, 3, 2));
    Show("unfold {1..5} with B=3, S=2 -> {{1,2,3},{3,4,5}}", {5}, seq);
    // Demonstrate the duplication numerically.
    std::vector<float> data{1, 2, 3, 4, 5};
    auto phys = runtime::Physicalize(data, {5}, seq);
    if (phys.ok()) {
      std::printf("physicalized: {");
      for (size_t i = 0; i < phys->size(); ++i) {
        std::printf("%s%.0f", i ? ", " : "", (*phys)[i]);
      }
      std::printf("}\n\n");
    }
  }
  {
    LayoutSeq seq;
    seq.Append(Primitive::Pad(1, 1, 1));
    Show("pad dim 1 by (1,1) (GPU bank-conflict alignment)", {4, 6}, seq);
  }
  {
    LayoutSeq seq;
    seq.Append(Primitive::StoreAt(/*src_tensor=*/7, /*dim=*/0));
    Show("store_at: attach a bias row to a K x N weight", {64, 32}, seq);
  }
  {
    // Inverse round trip: physicalize then canonicalize.
    LayoutSeq seq;
    seq.Append(Primitive::Split(0, {3, 4}));
    seq.Append(Primitive::Reorder({1, 0, 2}));
    seq.Append(Primitive::Unfold(2, 4, 2));
    std::vector<float> data(12 * 6);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(i);
    }
    auto phys = runtime::Physicalize(data, {12, 6}, seq);
    auto back = runtime::Canonicalize(*phys, {12, 6}, seq);
    std::printf("--- inverse round trip (split; reorder; unfold) ---\n");
    std::printf("max |canonicalize(physicalize(x)) - x| = %.1f\n",
                runtime::MaxAbsDiff(*back, data));
  }
  {
    // Relation algebra: two spellings of blocked NCHWc denote one relation,
    // and a bijective relation composed with its inverse is the identity.
    LayoutSeq a;
    a.Append(Primitive::Split(1, {4, 8}));
    a.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
    LayoutSeq b;
    b.Append(Primitive::Split(1, {4, 2, 4}));
    b.Append(Primitive::Fuse(2, 2));
    b.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
    auto ra = layout::LayoutRelation::FromSeq(a, {1, 32, 14, 14});
    auto rb = layout::LayoutRelation::FromSeq(b, {1, 32, 14, 14});
    std::printf("--- relation algebra ---\n");
    if (ra.ok() && rb.ok()) {
      std::printf("fingerprints equal across spellings: %s\n",
                  ra->Fingerprint() == rb->Fingerprint() ? "yes" : "no");
      auto inv = ra->Inverse();
      if (inv.ok()) {
        auto round = layout::LayoutRelation::Compose(*inv, *ra);
        std::printf("Compose(Inverse(R), R) is identity: %s\n",
                    round.ok() && round->IsIdentity() ? "yes" : "no");
      }
    }
  }
  return 0;
}

// alt_cli: command-line driver — tune a named network on a machine profile
// with a chosen method and budget, and print a compilation report.
//
//   ./build/examples/example_alt_cli [network] [machine] [method] [budget]
//
//   network: r18 | r18b16 | mv2 | bert-base | bert-tiny | r3d | first-layer | gmm16
//   machine: intel-cpu | nvidia-gpu | arm-cpu
//   method:  alt | alt-ol | alt-wp | ansor | autotvm | flextensor | vendor
//   budget:  measurement count (default 400)
//
// Telemetry (alt/alt-ol/alt-wp methods only):
//   ALT_TRACE=<path>    write a Chrome trace of the run (chrome://tracing)
//   ALT_METRICS=<path>  write the run's metrics snapshot as JSON (also
//                       honored on the artifact-serving paths, where the
//                       snapshot carries the codegen.* kernel-cache counters)
//
// Execution engine (alt/alt-ol/alt-wp methods only):
//   --engine auto|affine|generic|native or ALT_ENGINE=<name>
//     Engine for serving (runtime::ExecEngine). With `native`, tuning+save
//     embeds the JIT-compiled kernel objects in the artifact and serving
//     prefers them; a reloaded artifact then serves with zero recompiles
//     (codegen.compiles stays 0, codegen.cache_hits counts the reuse).
//   --intra-threads <n> or ALT_INTRA_THREADS=<n>
//     Intra-op threads for serving: root loops the schedule marked
//     ForKind::kParallel shard across n threads when provably safe
//     (bit-identical results at any n). <= 0 uses one per hardware core;
//     1 keeps execution serial.
//
// Deployment (alt/alt-ol/alt-wp methods only):
//   --artifact <path> or ALT_ARTIFACT=<path>
//     When the file exists: skip tuning, load the artifact, and serve one
//     request through runtime::InferenceSession (printing its provenance).
//     Otherwise: tune as usual, then save the artifact to that path.
//   --serve <n> (with an existing --artifact)
//     Instead of one direct request, run n randomly-filled requests through
//     the serving::Server front-end — dynamic batching under the default
//     size/timeout policy — and print the operator metrics (per-model
//     p50/p95/p99, batch sizes, queue waits) when the traffic drains.
//
// Robustness (alt/alt-ol/alt-wp methods only):
//   --workers <n> or ALT_WORKERS=<n>
//     Evaluate candidates in n forked worker subprocesses (crash isolation):
//     a candidate that crashes, hangs, or corrupts its reply is retried and
//     quarantined instead of killing the tuner. Trajectory-identical to
//     in-process measurement.
//   --tuning-db <path> or ALT_TUNING_DB=<path>
//     Persistent tuning database: measurements are looked up here before
//     running and appended after, so re-running the same tuning command
//     warm-starts with zero redundant measurements.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/runtime/session.h"
#include "src/serving/server.h"
#include "src/support/fileio.h"
#include "src/support/string_util.h"

namespace {

bool ParseEngine(const std::string& name, alt::runtime::ExecEngine* out) {
  if (name == "auto") {
    *out = alt::runtime::ExecEngine::kAuto;
  } else if (name == "affine") {
    *out = alt::runtime::ExecEngine::kAffine;
  } else if (name == "generic") {
    *out = alt::runtime::ExecEngine::kGeneric;
  } else if (name == "native") {
    *out = alt::runtime::ExecEngine::kNative;
  } else {
    return false;
  }
  return true;
}

// ALT_METRICS honored on the serving paths too: the process-global snapshot
// carries the codegen.* counters CI uses to assert zero recompiles on reload.
void MaybeWriteGlobalMetrics() {
  if (const char* metrics_path = std::getenv("ALT_METRICS")) {
    alt::Status ws =
        alt::WriteFile(metrics_path, alt::MetricsRegistry::Global().Snapshot().ToJson());
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics snapshot not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics snapshot written to %s\n", metrics_path);
    }
  }
}

alt::graph::Graph BuildNetwork(const std::string& name) {
  if (name == "r18") {
    return alt::graph::BuildResNet18(1);
  }
  if (name == "r18b16") {
    return alt::graph::BuildResNet18(16);
  }
  if (name == "mv2") {
    return alt::graph::BuildMobileNetV2(1);
  }
  if (name == "bert-base") {
    return alt::graph::BuildBert(1, 768, 12);
  }
  if (name == "bert-tiny") {
    return alt::graph::BuildBert(1, 128, 2);
  }
  if (name == "r3d") {
    return alt::graph::BuildResNet3d18(1);
  }
  if (name == "first-layer") {
    return alt::graph::BuildResNetFirstLayer(1);
  }
  if (name == "gmm16") {
    // Single 16x16x16 matmul: the compact divisor grid makes the joint
    // stage revisit fingerprint-equal layouts, exercising relation dedup.
    return alt::graph::BuildSingleMatmul(16, 16, 16);
  }
  std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
  std::exit(2);
}

// Serves one randomly-filled request through an InferenceSession built from
// a loaded artifact and prints what ran.
int ServeLoadedArtifact(const alt::core::LoadedArtifact& loaded,
                        const alt::runtime::SessionOptions& session_options) {
  using namespace alt;
  const autotune::CompiledNetwork& net = loaded.network;
  std::printf("loaded artifact: graph %s, tuned for %s (%s, budget %d, seed %llu, "
              "%d measurements, best %s, %d embedded kernels)\n",
              net.graph.name().c_str(), loaded.info.machine.c_str(),
              core::VariantName(loaded.info.variant), loaded.info.budget,
              static_cast<unsigned long long>(loaded.info.seed),
              loaded.info.measurements_used, FormatMicros(loaded.info.best_latency_us).c_str(),
              loaded.info.kernels);
  auto session = runtime::InferenceSession::Create(net.graph, net.assignment,
                                                   {net.groups, net.programs}, session_options);
  if (!session.ok()) {
    std::fprintf(stderr, "session creation failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  Rng rng(loaded.info.seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(net.graph, rng, data);
  auto out = session->Run(data);
  if (!out.ok()) {
    std::fprintf(stderr, "serving failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("served one request: output tensor %d, %zu elements\n",
              session->output_tensor(), out->size());
  MaybeWriteGlobalMetrics();
  return 0;
}

// Serves `count` randomly-filled requests through the dynamic-batching
// front-end and prints the operator metrics once the traffic drains.
int ServeTraffic(const alt::core::LoadedArtifact& loaded, int count,
                 const alt::runtime::SessionOptions& session_options) {
  using namespace alt;
  const autotune::CompiledNetwork& net = loaded.network;
  serving::ServerOptions server_options;
  server_options.session = session_options;
  serving::Server server(server_options);
  Status added = server.AddModel(net.graph.name(), loaded);
  if (!added.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n", added.ToString().c_str());
    return 1;
  }
  std::printf("serving %d requests through the batching front-end...\n", count);
  std::vector<std::future<serving::Response>> futures;
  futures.reserve(count);
  for (int i = 0; i < count; ++i) {
    Rng rng(loaded.info.seed + i);
    runtime::TensorDataMap data;
    runtime::FillGraphInputs(net.graph, rng, data);
    futures.push_back(server.Submit(net.graph.name(), std::move(data)));
  }
  int failed = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) {
      ++failed;
    }
  }
  MetricsSnapshot metrics = server.Metrics();
  const HistogramSnapshot* latency =
      metrics.histogram("serving." + net.graph.name() + ".request_us");
  const HistogramSnapshot* batch_size = metrics.histogram("serving.batch_size");
  std::printf("served %d requests (%d failed) in %lld batches\n", count, failed,
              static_cast<long long>(metrics.counter("serving.batches")));
  if (latency != nullptr) {
    std::printf("request latency us : p50 %.0f  p95 %.0f  p99 %.0f\n", latency->p50,
                latency->p95, latency->p99);
  }
  if (batch_size != nullptr && batch_size->count > 0) {
    std::printf("batch size         : mean %.1f  max %.0f\n", batch_size->mean(),
                batch_size->max);
  }
  MaybeWriteGlobalMetrics();
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alt;
  std::string artifact_path = std::getenv("ALT_ARTIFACT") ? std::getenv("ALT_ARTIFACT") : "";
  std::string tuning_db_path = std::getenv("ALT_TUNING_DB") ? std::getenv("ALT_TUNING_DB") : "";
  int workers = std::getenv("ALT_WORKERS") ? std::atoi(std::getenv("ALT_WORKERS")) : 0;
  std::string engine_name = std::getenv("ALT_ENGINE") ? std::getenv("ALT_ENGINE") : "auto";
  int intra_threads =
      std::getenv("ALT_INTRA_THREADS") ? std::atoi(std::getenv("ALT_INTRA_THREADS")) : 0;
  int serve_requests = 0;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--artifact" && i + 1 < argc) {
      artifact_path = argv[++i];
    } else if (std::string(argv[i]) == "--serve" && i + 1 < argc) {
      serve_requests = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::string(argv[i]) == "--tuning-db" && i + 1 < argc) {
      tuning_db_path = argv[++i];
    } else if (std::string(argv[i]) == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (std::string(argv[i]) == "--intra-threads" && i + 1 < argc) {
      intra_threads = std::atoi(argv[++i]);
    } else {
      pos.push_back(argv[i]);
    }
  }
  runtime::ExecEngine engine = runtime::ExecEngine::kAuto;
  if (!ParseEngine(engine_name, &engine)) {
    std::fprintf(stderr, "unknown engine '%s' (auto|affine|generic|native)\n",
                 engine_name.c_str());
    return 2;
  }
  std::string net_name = pos.size() > 0 ? pos[0] : "first-layer";
  std::string machine_name = pos.size() > 1 ? pos[1] : "intel-cpu";
  std::string method = pos.size() > 2 ? pos[2] : "alt";
  int budget = pos.size() > 3 ? std::atoi(pos[3].c_str()) : 400;

  // One flag set drives every serving path: ToSessionOptions maps the facade
  // options (engine, intra-op budget) onto session options.
  core::AltOptions serve_options;
  serve_options.engine = engine;
  serve_options.intra_threads = intra_threads;
  const runtime::SessionOptions session_options = core::ToSessionOptions(serve_options);

  if (!artifact_path.empty() && FileExists(artifact_path)) {
    auto loaded = core::LoadArtifact(artifact_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "artifact load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (serve_requests > 0) {
      return ServeTraffic(*loaded, serve_requests, session_options);
    }
    return ServeLoadedArtifact(*loaded, session_options);
  }

  graph::Graph g = BuildNetwork(net_name);
  const sim::Machine& machine = sim::Machine::ByName(machine_name);
  std::printf("tuning %s on %s with %s (budget %d)...\n", g.name().c_str(),
              machine.name.c_str(), method.c_str(), budget);

  StatusOr<autotune::CompiledNetwork> compiled = Status::Ok();
  if (method == "ansor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kAnsor, g, machine, budget);
  } else if (method == "autotvm") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kAutoTvm, g, machine, budget);
  } else if (method == "flextensor") {
    compiled =
        baselines::RunBaseline(baselines::BaselineKind::kFlexTensor, g, machine, budget);
  } else if (method == "vendor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kVendor, g, machine, 0);
  } else {
    core::AltOptions options;
    options.budget = budget;
    options.engine = engine;
    options.intra_threads = intra_threads;
    if (const char* trace = std::getenv("ALT_TRACE")) {
      options.trace.path = trace;
    }
    if (workers > 0) {
      options.measure.isolate = true;
      options.measure.workers = workers;
    }
    options.measure.database = tuning_db_path;
    if (method == "alt-ol") {
      options.variant = core::AltVariant::kLoopOnly;
    } else if (method == "alt-wp") {
      options.variant = core::AltVariant::kWithoutPropagation;
    } else if (method != "alt") {
      std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
      return 2;
    }
    compiled = core::Compile(g, machine, options);
    if (compiled.ok() && !artifact_path.empty()) {
      Status ws = core::SaveArtifact(*compiled, machine, options, artifact_path);
      if (!ws.ok()) {
        std::fprintf(stderr, "artifact not written: %s\n", ws.ToString().c_str());
      } else {
        std::printf("artifact written to %s\n", artifact_path.c_str());
      }
    }
  }
  if (!compiled.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }

  const auto& result = *compiled;
  if (const char* metrics_path = std::getenv("ALT_METRICS")) {
    Status ws = WriteFile(metrics_path, result.metrics.ToJson());
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics snapshot not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics snapshot written to %s\n", metrics_path);
    }
  }
  std::printf("\n=== compilation report ===\n");
  std::printf("estimated latency : %s\n", FormatMicros(result.perf.latency_us).c_str());
  std::printf("flops             : %.3g\n", result.perf.flops);
  std::printf("L1 loads / misses : %.3g / %.3g\n", result.perf.l1_loads,
              result.perf.l1_misses);
  std::printf("DRAM traffic      : %.1f MB\n", result.perf.dram_bytes / 1e6);
  std::printf("measurements used : %d\n", result.measurements_used);
  std::printf("fused groups      : %zu\n", result.groups.size());
  int conversions = 0;
  int layouted = 0;
  for (const auto& group : result.groups) {
    if (result.graph.op(group.anchor_op).kind == graph::OpKind::kLayoutConvert) {
      ++conversions;
    }
    if (!result.assignment.Get(group.OutputTensor(result.graph)).empty()) {
      ++layouted;
    }
  }
  std::printf("conversion ops    : %d\n", conversions);
  std::printf("non-canonical outs: %d\n", layouted);

  // Show the five slowest groups.
  std::vector<std::pair<double, size_t>> costs;
  for (size_t i = 0; i < result.programs.size(); ++i) {
    costs.push_back({sim::EstimateProgram(result.programs[i], machine).latency_us, i});
  }
  std::sort(costs.rbegin(), costs.rend());
  std::printf("\nhottest groups:\n");
  for (size_t i = 0; i < costs.size() && i < 5; ++i) {
    size_t gi = costs[i].second;
    int out = result.groups[gi].OutputTensor(result.graph);
    const auto& seq = result.assignment.Get(out);
    std::printf("  %8.1f us  %-20s layout: %s\n", costs[i].first,
                result.graph.op(result.groups[gi].anchor_op).name.c_str(),
                seq.empty() ? "canonical" : seq.ToString().c_str());
  }
  return 0;
}

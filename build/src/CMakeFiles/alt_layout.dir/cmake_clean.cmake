file(REMOVE_RECURSE
  "CMakeFiles/alt_layout.dir/layout/primitive.cc.o"
  "CMakeFiles/alt_layout.dir/layout/primitive.cc.o.d"
  "libalt_layout.a"
  "libalt_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

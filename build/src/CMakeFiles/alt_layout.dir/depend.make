# Empty dependencies file for alt_layout.
# This may be replaced when dependencies are built.

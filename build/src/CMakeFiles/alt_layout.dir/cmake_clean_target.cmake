file(REMOVE_RECURSE
  "libalt_layout.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alt_sim.dir/sim/cache.cc.o"
  "CMakeFiles/alt_sim.dir/sim/cache.cc.o.d"
  "CMakeFiles/alt_sim.dir/sim/machine.cc.o"
  "CMakeFiles/alt_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/alt_sim.dir/sim/perf_model.cc.o"
  "CMakeFiles/alt_sim.dir/sim/perf_model.cc.o.d"
  "libalt_sim.a"
  "libalt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libalt_sim.a"
)

# Empty dependencies file for alt_sim.
# This may be replaced when dependencies are built.

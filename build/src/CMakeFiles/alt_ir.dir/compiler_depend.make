# Empty compiler generated dependencies file for alt_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alt_ir.dir/ir/eval.cc.o"
  "CMakeFiles/alt_ir.dir/ir/eval.cc.o.d"
  "CMakeFiles/alt_ir.dir/ir/expr.cc.o"
  "CMakeFiles/alt_ir.dir/ir/expr.cc.o.d"
  "CMakeFiles/alt_ir.dir/ir/stmt.cc.o"
  "CMakeFiles/alt_ir.dir/ir/stmt.cc.o.d"
  "CMakeFiles/alt_ir.dir/ir/tensor.cc.o"
  "CMakeFiles/alt_ir.dir/ir/tensor.cc.o.d"
  "CMakeFiles/alt_ir.dir/ir/value.cc.o"
  "CMakeFiles/alt_ir.dir/ir/value.cc.o.d"
  "libalt_ir.a"
  "libalt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

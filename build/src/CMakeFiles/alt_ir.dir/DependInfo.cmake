
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/eval.cc" "src/CMakeFiles/alt_ir.dir/ir/eval.cc.o" "gcc" "src/CMakeFiles/alt_ir.dir/ir/eval.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/CMakeFiles/alt_ir.dir/ir/expr.cc.o" "gcc" "src/CMakeFiles/alt_ir.dir/ir/expr.cc.o.d"
  "/root/repo/src/ir/stmt.cc" "src/CMakeFiles/alt_ir.dir/ir/stmt.cc.o" "gcc" "src/CMakeFiles/alt_ir.dir/ir/stmt.cc.o.d"
  "/root/repo/src/ir/tensor.cc" "src/CMakeFiles/alt_ir.dir/ir/tensor.cc.o" "gcc" "src/CMakeFiles/alt_ir.dir/ir/tensor.cc.o.d"
  "/root/repo/src/ir/value.cc" "src/CMakeFiles/alt_ir.dir/ir/value.cc.o" "gcc" "src/CMakeFiles/alt_ir.dir/ir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libalt_ir.a"
)

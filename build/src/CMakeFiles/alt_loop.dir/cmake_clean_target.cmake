file(REMOVE_RECURSE
  "libalt_loop.a"
)

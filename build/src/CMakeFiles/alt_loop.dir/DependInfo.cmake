
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loop/lowering.cc" "src/CMakeFiles/alt_loop.dir/loop/lowering.cc.o" "gcc" "src/CMakeFiles/alt_loop.dir/loop/lowering.cc.o.d"
  "/root/repo/src/loop/schedule.cc" "src/CMakeFiles/alt_loop.dir/loop/schedule.cc.o" "gcc" "src/CMakeFiles/alt_loop.dir/loop/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

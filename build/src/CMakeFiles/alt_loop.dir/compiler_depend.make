# Empty compiler generated dependencies file for alt_loop.
# This may be replaced when dependencies are built.

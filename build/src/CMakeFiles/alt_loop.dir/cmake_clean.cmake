file(REMOVE_RECURSE
  "CMakeFiles/alt_loop.dir/loop/lowering.cc.o"
  "CMakeFiles/alt_loop.dir/loop/lowering.cc.o.d"
  "CMakeFiles/alt_loop.dir/loop/schedule.cc.o"
  "CMakeFiles/alt_loop.dir/loop/schedule.cc.o.d"
  "libalt_loop.a"
  "libalt_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/alt_graph.dir/graph/graph.cc.o"
  "CMakeFiles/alt_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/alt_graph.dir/graph/layout_assignment.cc.o"
  "CMakeFiles/alt_graph.dir/graph/layout_assignment.cc.o.d"
  "CMakeFiles/alt_graph.dir/graph/networks.cc.o"
  "CMakeFiles/alt_graph.dir/graph/networks.cc.o.d"
  "CMakeFiles/alt_graph.dir/graph/op.cc.o"
  "CMakeFiles/alt_graph.dir/graph/op.cc.o.d"
  "libalt_graph.a"
  "libalt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

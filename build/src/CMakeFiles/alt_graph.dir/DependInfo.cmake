
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/alt_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/alt_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/layout_assignment.cc" "src/CMakeFiles/alt_graph.dir/graph/layout_assignment.cc.o" "gcc" "src/CMakeFiles/alt_graph.dir/graph/layout_assignment.cc.o.d"
  "/root/repo/src/graph/networks.cc" "src/CMakeFiles/alt_graph.dir/graph/networks.cc.o" "gcc" "src/CMakeFiles/alt_graph.dir/graph/networks.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/CMakeFiles/alt_graph.dir/graph/op.cc.o" "gcc" "src/CMakeFiles/alt_graph.dir/graph/op.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

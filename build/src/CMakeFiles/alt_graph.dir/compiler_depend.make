# Empty compiler generated dependencies file for alt_graph.
# This may be replaced when dependencies are built.

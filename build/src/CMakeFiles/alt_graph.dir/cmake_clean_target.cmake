file(REMOVE_RECURSE
  "libalt_graph.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alt_autotune.dir/autotune/gbt.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/gbt.cc.o.d"
  "CMakeFiles/alt_autotune.dir/autotune/layout_templates.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/layout_templates.cc.o.d"
  "CMakeFiles/alt_autotune.dir/autotune/mlp.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/mlp.cc.o.d"
  "CMakeFiles/alt_autotune.dir/autotune/ppo.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/ppo.cc.o.d"
  "CMakeFiles/alt_autotune.dir/autotune/space.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/space.cc.o.d"
  "CMakeFiles/alt_autotune.dir/autotune/tuner.cc.o"
  "CMakeFiles/alt_autotune.dir/autotune/tuner.cc.o.d"
  "libalt_autotune.a"
  "libalt_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for alt_autotune.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libalt_autotune.a"
)

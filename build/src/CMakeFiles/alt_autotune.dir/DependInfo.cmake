
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autotune/gbt.cc" "src/CMakeFiles/alt_autotune.dir/autotune/gbt.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/gbt.cc.o.d"
  "/root/repo/src/autotune/layout_templates.cc" "src/CMakeFiles/alt_autotune.dir/autotune/layout_templates.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/layout_templates.cc.o.d"
  "/root/repo/src/autotune/mlp.cc" "src/CMakeFiles/alt_autotune.dir/autotune/mlp.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/mlp.cc.o.d"
  "/root/repo/src/autotune/ppo.cc" "src/CMakeFiles/alt_autotune.dir/autotune/ppo.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/ppo.cc.o.d"
  "/root/repo/src/autotune/space.cc" "src/CMakeFiles/alt_autotune.dir/autotune/space.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/space.cc.o.d"
  "/root/repo/src/autotune/tuner.cc" "src/CMakeFiles/alt_autotune.dir/autotune/tuner.cc.o" "gcc" "src/CMakeFiles/alt_autotune.dir/autotune/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for alt_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alt_runtime.dir/runtime/interpreter.cc.o"
  "CMakeFiles/alt_runtime.dir/runtime/interpreter.cc.o.d"
  "CMakeFiles/alt_runtime.dir/runtime/reference.cc.o"
  "CMakeFiles/alt_runtime.dir/runtime/reference.cc.o.d"
  "CMakeFiles/alt_runtime.dir/runtime/session.cc.o"
  "CMakeFiles/alt_runtime.dir/runtime/session.cc.o.d"
  "libalt_runtime.a"
  "libalt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libalt_runtime.a"
)

file(REMOVE_RECURSE
  "libalt_baselines.a"
)

# Empty dependencies file for alt_baselines.
# This may be replaced when dependencies are built.

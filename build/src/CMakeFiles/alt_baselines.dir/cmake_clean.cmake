file(REMOVE_RECURSE
  "CMakeFiles/alt_baselines.dir/baselines/baselines.cc.o"
  "CMakeFiles/alt_baselines.dir/baselines/baselines.cc.o.d"
  "libalt_baselines.a"
  "libalt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libalt_support.a"
)

# Empty compiler generated dependencies file for alt_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alt_support.dir/support/logging.cc.o"
  "CMakeFiles/alt_support.dir/support/logging.cc.o.d"
  "CMakeFiles/alt_support.dir/support/rng.cc.o"
  "CMakeFiles/alt_support.dir/support/rng.cc.o.d"
  "CMakeFiles/alt_support.dir/support/status.cc.o"
  "CMakeFiles/alt_support.dir/support/status.cc.o.d"
  "CMakeFiles/alt_support.dir/support/string_util.cc.o"
  "CMakeFiles/alt_support.dir/support/string_util.cc.o.d"
  "libalt_support.a"
  "libalt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/alt_support.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/alt_support.dir/support/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/alt_support.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/alt_support.dir/support/rng.cc.o.d"
  "/root/repo/src/support/status.cc" "src/CMakeFiles/alt_support.dir/support/status.cc.o" "gcc" "src/CMakeFiles/alt_support.dir/support/status.cc.o.d"
  "/root/repo/src/support/string_util.cc" "src/CMakeFiles/alt_support.dir/support/string_util.cc.o" "gcc" "src/CMakeFiles/alt_support.dir/support/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(autotune_test "/root/repo/build/tests/autotune_test")
set_tests_properties(autotune_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_expr_test "/root/repo/build/tests/ir_expr_test")
set_tests_properties(ir_expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(layout_primitive_test "/root/repo/build/tests/layout_primitive_test")
set_tests_properties(layout_primitive_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(loop_schedule_test "/root/repo/build/tests/loop_schedule_test")
set_tests_properties(loop_schedule_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lowering_correctness_test "/root/repo/build/tests/lowering_correctness_test")
set_tests_properties(lowering_correctness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")

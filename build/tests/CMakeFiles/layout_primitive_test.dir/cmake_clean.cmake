file(REMOVE_RECURSE
  "CMakeFiles/layout_primitive_test.dir/layout_primitive_test.cc.o"
  "CMakeFiles/layout_primitive_test.dir/layout_primitive_test.cc.o.d"
  "layout_primitive_test"
  "layout_primitive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_primitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for layout_primitive_test.
# This may be replaced when dependencies are built.

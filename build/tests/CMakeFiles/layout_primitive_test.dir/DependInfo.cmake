
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/layout_primitive_test.cc" "tests/CMakeFiles/layout_primitive_test.dir/layout_primitive_test.cc.o" "gcc" "tests/CMakeFiles/layout_primitive_test.dir/layout_primitive_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_autotune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/loop_schedule_test.dir/loop_schedule_test.cc.o"
  "CMakeFiles/loop_schedule_test.dir/loop_schedule_test.cc.o.d"
  "loop_schedule_test"
  "loop_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ir_expr_test.dir/ir_expr_test.cc.o"
  "CMakeFiles/ir_expr_test.dir/ir_expr_test.cc.o.d"
  "ir_expr_test"
  "ir_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

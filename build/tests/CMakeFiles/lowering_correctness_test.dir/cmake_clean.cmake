file(REMOVE_RECURSE
  "CMakeFiles/lowering_correctness_test.dir/lowering_correctness_test.cc.o"
  "CMakeFiles/lowering_correctness_test.dir/lowering_correctness_test.cc.o.d"
  "lowering_correctness_test"
  "lowering_correctness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowering_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lowering_correctness_test.
# This may be replaced when dependencies are built.

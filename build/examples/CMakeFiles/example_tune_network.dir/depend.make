# Empty dependencies file for example_tune_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_tune_network.dir/tune_network.cpp.o"
  "CMakeFiles/example_tune_network.dir/tune_network.cpp.o.d"
  "example_tune_network"
  "example_tune_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tune_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_layout_playground.dir/layout_playground.cpp.o"
  "CMakeFiles/example_layout_playground.dir/layout_playground.cpp.o.d"
  "example_layout_playground"
  "example_layout_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_layout_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_layout_playground.
# This may be replaced when dependencies are built.

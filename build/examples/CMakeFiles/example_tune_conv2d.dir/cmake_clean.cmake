file(REMOVE_RECURSE
  "CMakeFiles/example_tune_conv2d.dir/tune_conv2d.cpp.o"
  "CMakeFiles/example_tune_conv2d.dir/tune_conv2d.cpp.o.d"
  "example_tune_conv2d"
  "example_tune_conv2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tune_conv2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

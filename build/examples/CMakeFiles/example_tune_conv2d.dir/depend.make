# Empty dependencies file for example_tune_conv2d.
# This may be replaced when dependencies are built.

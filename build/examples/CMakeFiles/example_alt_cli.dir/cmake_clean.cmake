file(REMOVE_RECURSE
  "CMakeFiles/example_alt_cli.dir/alt_cli.cpp.o"
  "CMakeFiles/example_alt_cli.dir/alt_cli.cpp.o.d"
  "example_alt_cli"
  "example_alt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_alt_cli.
# This may be replaced when dependencies are built.
